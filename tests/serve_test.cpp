// Tests for the query-service layer (src/serve/): snapshot store epoch
// semantics, result-cache LRU behavior, query-engine correctness against
// the batch kernels, the service façade's sync/async paths, and snapshot
// swap under concurrent query load (the TSan CI job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "check/differential.hpp"
#include "core/api.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "intersect/merge.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"

namespace aecnc {
namespace {

graph::Csr test_graph(std::uint64_t seed, VertexId n = 400,
                      std::uint64_t m = 2500) {
  return graph::Csr::from_edge_list(graph::chung_lu_power_law(n, m, 2.2, seed));
}

// ---------------------------------------------------------------------------
// SnapshotStore

TEST(SnapshotStore, EpochsStartAtOneAndIncrement) {
  serve::SnapshotStore store;
  EXPECT_EQ(store.current_epoch(), 0u);
  EXPECT_EQ(store.acquire(), nullptr);
  EXPECT_EQ(store.publish(test_graph(1)), 1u);
  EXPECT_EQ(store.publish(test_graph(2)), 2u);
  EXPECT_EQ(store.current_epoch(), 2u);
  EXPECT_EQ(store.publish_count(), 2u);
}

TEST(SnapshotStore, PinnedSnapshotSurvivesPublish) {
  serve::SnapshotStore store(test_graph(1));
  const serve::SnapshotPtr pinned = store.acquire();
  ASSERT_NE(pinned, nullptr);
  const auto vertices = pinned->graph.num_vertices();
  const auto edges = pinned->graph.num_directed_edges();
  store.publish(test_graph(2, 100, 300));
  // The pin keeps epoch 1 fully readable after epoch 2 swapped in.
  EXPECT_EQ(pinned->epoch, 1u);
  EXPECT_EQ(pinned->graph.num_vertices(), vertices);
  EXPECT_EQ(pinned->graph.num_directed_edges(), edges);
  EXPECT_EQ(store.acquire()->epoch, 2u);
}

// ---------------------------------------------------------------------------
// ResultCache

TEST(ResultCache, HitMissAndSymmetricKeys) {
  serve::ResultCache cache(8);
  EXPECT_FALSE(cache.lookup(1, 2, 3).has_value());
  cache.insert(1, 2, 3, {.count = 42, .is_edge = true});
  const auto hit = cache.lookup(1, 2, 3);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->count, 42u);
  EXPECT_TRUE(hit->is_edge);
  // (v, u) canonicalizes to the same entry.
  EXPECT_EQ(cache.lookup(1, 3, 2)->count, 42u);
  // A different epoch is a different key.
  EXPECT_FALSE(cache.lookup(2, 2, 3).has_value());
  const auto s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 2u);
  EXPECT_EQ(s.size, 1u);
}

TEST(ResultCache, EvictsLeastRecentlyUsed) {
  serve::ResultCache cache(2);
  cache.insert(1, 0, 1, {.count = 10, .is_edge = true});
  cache.insert(1, 0, 2, {.count = 20, .is_edge = true});
  ASSERT_TRUE(cache.lookup(1, 0, 1).has_value());  // bump (0,1) to MRU
  cache.insert(1, 0, 3, {.count = 30, .is_edge = true});  // evicts (0,2)
  EXPECT_TRUE(cache.lookup(1, 0, 1).has_value());
  EXPECT_FALSE(cache.lookup(1, 0, 2).has_value());
  EXPECT_TRUE(cache.lookup(1, 0, 3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ResultCache, InvalidateAllDropsEverythingAndCounts) {
  serve::ResultCache cache(8);
  cache.insert(1, 0, 1, {.count = 10, .is_edge = true});
  cache.insert(1, 0, 2, {.count = 20, .is_edge = true});
  cache.invalidate_all();
  EXPECT_EQ(cache.stats().size, 0u);
  EXPECT_EQ(cache.stats().invalidations, 2u);
  EXPECT_FALSE(cache.lookup(1, 0, 1).has_value());
}

TEST(ResultCache, ZeroCapacityDisablesCaching) {
  serve::ResultCache cache(0);
  cache.insert(1, 0, 1, {.count = 10, .is_edge = true});
  EXPECT_FALSE(cache.lookup(1, 0, 1).has_value());
  EXPECT_EQ(cache.stats().size, 0u);
}

// ---------------------------------------------------------------------------
// QueryEngine correctness against the batch kernels

struct EngineCase {
  core::Algorithm algorithm;
  serve::ServeIndex index;
  const char* name;
};

class QueryEngineCorrectness : public ::testing::TestWithParam<EngineCase> {};

TEST_P(QueryEngineCorrectness, MatchesAllEdgeRun) {
  const graph::Csr g = test_graph(11);
  const core::CountArray reference = core::count_reference(g);

  serve::EngineConfig cfg;
  cfg.options.algorithm = GetParam().algorithm;
  cfg.index = GetParam().index;
  cfg.num_workers = 3;
  cfg.task_size = 17;  // odd chunking on purpose
  serve::QueryEngine engine(cfg);
  const serve::Snapshot snap{.epoch = 1, .graph = g};

  // Vertex-neighborhood queries reproduce the all-edge slices.
  for (VertexId u = 0; u < g.num_vertices(); u += 7) {
    const auto counts = engine.count_vertex(snap, u);
    const auto nbrs = g.neighbors(u);
    ASSERT_EQ(counts.size(), nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      ASSERT_EQ(counts[k], reference[g.offset_begin(u) + k])
          << "u=" << u << " k=" << k;
    }
  }

  // A bulk batch over every forward edge reproduces the full run.
  std::vector<serve::EdgeQuery> queries;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) queries.push_back({u, v});
    }
  }
  const auto batch = engine.count_batch(snap, queries);
  std::size_t i = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) {
        ASSERT_EQ(batch[i], reference[g.find_edge(u, v)])
            << "u=" << u << " v=" << v;
        ++i;
      }
    }
  }

  // Point queries (always MPS-routed) agree too, including non-edges.
  EXPECT_EQ(engine.count_pair(snap, 0, 0), 0u);
  EXPECT_EQ(engine.count_pair(snap, 0, g.num_vertices()), 0u);
  for (VertexId u = 0; u < g.num_vertices(); u += 13) {
    const VertexId v = (u * 31 + 7) % g.num_vertices();
    if (u == v) continue;
    EXPECT_EQ(engine.count_pair(snap, u, v),
              intersect::merge_count(g.neighbors(u), g.neighbors(v)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Routes, QueryEngineCorrectness,
    ::testing::Values(
        EngineCase{core::Algorithm::kMergeBaseline, serve::ServeIndex::kBitmap,
                   "M"},
        EngineCase{core::Algorithm::kMps, serve::ServeIndex::kBitmap, "MPS"},
        EngineCase{core::Algorithm::kBmp, serve::ServeIndex::kBitmap,
                   "BMPbitmap"},
        EngineCase{core::Algorithm::kBmp, serve::ServeIndex::kHash, "BMPhash"}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(QueryEngine, IndexSurvivesEpochSwap) {
  serve::EngineConfig cfg;
  cfg.options.algorithm = core::Algorithm::kBmp;
  cfg.num_workers = 2;
  serve::QueryEngine engine(cfg);

  const graph::Csr g1 = test_graph(21, 300, 1500);
  const graph::Csr g2 = test_graph(22, 500, 4000);  // larger universe
  const serve::Snapshot s1{.epoch = 1, .graph = g1};
  const serve::Snapshot s2{.epoch = 2, .graph = g2};
  const auto r1 = core::count_reference(g1);
  const auto r2 = core::count_reference(g2);

  // Alternate snapshots through the same engine: worker bitmaps must be
  // rebuilt per epoch, never leak bits across graphs.
  for (int round = 0; round < 3; ++round) {
    for (const auto& [snap, ref] :
         {std::pair{&s1, &r1}, std::pair{&s2, &r2}}) {
      const VertexId u = 5;
      const auto counts = engine.count_vertex(*snap, u);
      const auto nbrs = snap->graph.neighbors(u);
      ASSERT_EQ(counts.size(), nbrs.size());
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        ASSERT_EQ(counts[k], (*ref)[snap->graph.offset_begin(u) + k])
            << "round=" << round << " epoch=" << snap->epoch;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// core/api point-query entry points

TEST(CoreApi, CountEdgeAndCountVertexMatchReference) {
  const graph::Csr g = test_graph(31, 200, 1200);
  const auto reference = core::count_reference(g);
  for (VertexId u = 0; u < g.num_vertices(); u += 11) {
    const auto counts = core::count_vertex(g, u);
    const auto nbrs = g.neighbors(u);
    ASSERT_EQ(counts.size(), nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      ASSERT_EQ(counts[k], reference[g.offset_begin(u) + k]);
      ASSERT_EQ(core::count_edge(g, u, nbrs[k]),
                reference[g.offset_begin(u) + k]);
    }
  }
  EXPECT_EQ(core::count_edge(g, 3, 3), 0u);
  EXPECT_EQ(core::count_edge(g, 0, g.num_vertices()), 0u);
  EXPECT_TRUE(core::count_vertex(g, g.num_vertices()).empty());
}

// ---------------------------------------------------------------------------
// Service façade

TEST(Service, MixedWorkloadByteIdenticalToBatchRun) {
  const graph::Csr g = test_graph(41);
  const core::CountArray direct = core::count_common_neighbors(g);

  serve::ServiceConfig cfg;
  cfg.engine.options.algorithm = core::Algorithm::kBmp;
  cfg.engine.num_workers = 2;
  serve::Service svc(cfg);
  svc.publish(graph::Csr(g));

  std::vector<serve::EdgeQuery> all_edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) all_edges.push_back({u, v});
    }
  }

  // Point, vertex, and batch answers all reproduce the one-shot run.
  const auto batch = svc.query_batch(all_edges);
  for (std::size_t i = 0; i < all_edges.size(); ++i) {
    ASSERT_EQ(batch[i].count, direct[g.find_edge(all_edges[i].u,
                                                 all_edges[i].v)]);
    ASSERT_TRUE(batch[i].is_edge);
    ASSERT_EQ(batch[i].epoch, 1u);
  }
  for (VertexId u = 0; u < g.num_vertices(); u += 17) {
    const auto r = svc.query_vertex(u);
    const auto nbrs = g.neighbors(u);
    ASSERT_EQ(r.counts.size(), nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      ASSERT_EQ(r.counts[k], direct[g.offset_begin(u) + k]);
    }
  }
  const auto point = svc.query_edge(all_edges[0].u, all_edges[0].v);
  EXPECT_EQ(point.count, direct[g.find_edge(all_edges[0].u, all_edges[0].v)]);
  EXPECT_TRUE(point.cached);  // the batch warmed the cache
}

TEST(Service, CacheHitsAndInvalidationOnPublish) {
  serve::Service svc;
  svc.publish(test_graph(51, 100, 400));

  const auto first = svc.query_edge(1, 2);
  EXPECT_FALSE(first.cached);
  const auto second = svc.query_edge(2, 1);  // symmetric key
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.count, first.count);

  svc.publish(test_graph(51, 100, 400));
  const auto after = svc.query_edge(1, 2);
  EXPECT_FALSE(after.cached);  // wholesale invalidation
  EXPECT_EQ(after.epoch, 2u);

  const auto s = svc.stats();
  EXPECT_EQ(s.publishes, 2u);
  EXPECT_EQ(s.cache.hits, 1u);
  EXPECT_EQ(s.point_queries, 3u);
}

TEST(Service, QueryBeforePublishThrows) {
  serve::Service svc;
  EXPECT_THROW((void)svc.query_edge(0, 1), std::runtime_error);
}

TEST(Service, AsyncCoalescingAndRejection) {
  const graph::Csr g = test_graph(61, 100, 400);
  const auto reference = core::count_reference(g);

  serve::ServiceConfig cfg;
  cfg.queue_capacity = 4;
  cfg.max_coalesce = 8;
  cfg.start_dispatcher = false;  // drive with pump() for determinism
  serve::Service svc(cfg);
  svc.publish(graph::Csr(g));

  std::vector<std::future<serve::QueryResult>> futures;
  std::vector<serve::EdgeQuery> pairs;
  for (VertexId u = 0; u < 4; ++u) {
    const VertexId v = g.neighbors(u).empty() ? u + 10 : g.neighbors(u)[0];
    pairs.push_back({u, v});
    futures.push_back(svc.submit_edge(u, v));
  }
  EXPECT_EQ(svc.stats().queue_depth, 4u);

  // Queue full: load-shedding path rejects.
  EXPECT_FALSE(svc.try_submit_edge(90, 91).has_value());
  EXPECT_EQ(svc.stats().async_rejected, 1u);

  // One pump coalesces all four into a single engine batch.
  EXPECT_EQ(svc.pump(), 4u);
  EXPECT_EQ(svc.pump(), 0u);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    const auto r = futures[i].get();
    EXPECT_EQ(r.epoch, 1u);
    const auto [u, v] = pairs[i];
    if (r.is_edge) {
      EXPECT_EQ(r.count, reference[g.find_edge(u, v)]);
    }
  }
  const auto s = svc.stats();
  EXPECT_EQ(s.async_batches, 1u);
  EXPECT_EQ(s.async_max_coalesced, 4u);

  // Cache fast path: a repeated submit completes without queuing.
  auto cached = svc.submit_edge(pairs[0].u, pairs[0].v);
  EXPECT_EQ(cached.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  EXPECT_TRUE(cached.get().cached);
  EXPECT_EQ(svc.stats().queue_depth, 0u);
}

TEST(Service, SubmitBackpressureBlocksUntilDrained) {
  serve::ServiceConfig cfg;
  cfg.queue_capacity = 1;
  cfg.start_dispatcher = false;
  serve::Service svc(cfg);
  svc.publish(test_graph(71, 100, 400));

  auto first = svc.submit_edge(0, 1);  // fills the queue
  std::atomic<bool> done{false};
  std::thread producer([&] {
    auto second = svc.submit_edge(2, 3);  // must block until pump() drains
    (void)second.get();
    done.store(true);
  });
  while (!done.load()) {
    svc.pump();
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_EQ(first.get().epoch, 1u);
  EXPECT_GE(svc.stats().async_batches, 1u);
}

// ---------------------------------------------------------------------------
// Snapshot swap under concurrent query load (TSan target). Every reply
// must be consistent with exactly one published epoch: we validate each
// count against a reference recomputed on that epoch's graph.

TEST(Service, SnapshotSwapUnderLoadKeepsEpochsConsistent) {
  // Same vertex universe, three different edge sets with different counts.
  std::vector<graph::Csr> graphs;
  for (std::uint64_t seed = 81; seed < 84; ++seed) {
    graphs.push_back(test_graph(seed, 250, 1500));
  }
  // references[e - 1] is the ground truth for epoch e.
  std::vector<core::CountArray> references;
  references.reserve(graphs.size());
  for (const auto& g : graphs) references.push_back(core::count_reference(g));

  serve::ServiceConfig cfg;
  cfg.engine.options.algorithm = core::Algorithm::kBmp;
  cfg.engine.num_workers = 2;
  cfg.cache_capacity = 256;
  serve::Service svc(cfg);
  svc.publish(graph::Csr(graphs[0]));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validated{0};
  std::atomic<bool> failed{false};

  const auto check_reply = [&](const serve::QueryResult& r) {
    ASSERT_GE(r.epoch, 1u);
    ASSERT_LE(r.epoch, graphs.size());
    const graph::Csr& g = graphs[r.epoch - 1];
    // Recompute on the pinned epoch's graph: a reply mixing two epochs
    // (e.g. counted on one graph, attributed to another) fails here.
    const CnCount expected =
        (r.u < g.num_vertices() && r.v < g.num_vertices() && r.u != r.v)
            ? intersect::merge_count(g.neighbors(r.u), g.neighbors(r.v))
            : 0;
    if (r.count != expected) failed.store(true);
    ASSERT_EQ(r.count, expected) << "epoch=" << r.epoch << " u=" << r.u
                                 << " v=" << r.v;
    validated.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      std::uint64_t x = 12345u + static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        // xorshift: cheap deterministic-per-thread pair stream.
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const auto u = static_cast<VertexId>(x % 250);
        const auto v = static_cast<VertexId>((x >> 8) % 250);
        if (t == 0) {
          // Async path through the dispatcher.
          check_reply(svc.submit_edge(u, v).get());
        } else if (t == 1) {
          check_reply(svc.query_edge(u, v));
        } else {
          const std::vector<serve::EdgeQuery> batch{{u, v}, {v, u}, {u, u}};
          for (const auto& r : svc.query_batch(batch)) check_reply(r);
        }
      }
    });
  }

  // Publish the remaining epochs while clients hammer the service.
  for (std::size_t i = 1; i < graphs.size(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    svc.publish(graph::Csr(graphs[i]));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  for (auto& c : clients) c.join();

  EXPECT_FALSE(failed.load());
  EXPECT_GT(validated.load(), 0u);
  EXPECT_EQ(svc.stats().epoch, graphs.size());

  // Differential cross-check (src/check): the kernels the engine routes
  // through still agree with the scalar reference on adversarial shapes.
  check::DifferentialConfig diff;
  diff.cases = 40;
  diff.max_len = 128;
  const auto report = check::run_kernel_differential(diff);
  EXPECT_TRUE(report.ok())
      << (report.mismatches.empty() ? "" : report.mismatches.front());
}

// ---------------------------------------------------------------------------
// Relabeled serving (ServiceConfig::relabel): internal hub-first snapshots
// behind external-ID requests and replies.

TEST(ServiceRelabel, PublishesHubFirstSnapshotsBehindExternalIds) {
  const graph::Csr g = test_graph(71, 500, 3000);
  const core::CountArray direct = core::count_common_neighbors(g);

  serve::ServiceConfig cfg;
  cfg.relabel = true;
  serve::Service svc(cfg);
  svc.publish(graph::Csr(g));

  const auto snap = svc.snapshot();
  EXPECT_TRUE(graph::is_degree_descending(snap->graph));
  EXPECT_FALSE(snap->id_map.is_identity());
  EXPECT_TRUE(snap->id_map.validate().empty()) << snap->id_map.validate();

  // Point replies speak external IDs and match the unrelabeled run.
  for (VertexId u = 0; u < g.num_vertices(); u += 13) {
    for (const VertexId v : g.neighbors(u)) {
      const auto r = svc.query_edge(u, v);
      ASSERT_EQ(r.u, u);
      ASSERT_EQ(r.v, v);
      ASSERT_TRUE(r.is_edge);
      ASSERT_EQ(r.count, direct[g.find_edge(u, v)]);
    }
  }
  // Cache round trip: the symmetric repeat must hit.
  const VertexId u0 = 0;
  ASSERT_GT(g.degree(u0), 0u);
  const VertexId v0 = g.neighbors(u0)[0];
  (void)svc.query_edge(u0, v0);
  EXPECT_TRUE(svc.query_edge(v0, u0).cached);

  // Vertex replies come back in external neighbor order.
  for (VertexId u = 0; u < g.num_vertices(); u += 29) {
    const auto r = svc.query_vertex(u);
    const auto nbrs = g.neighbors(u);
    ASSERT_EQ(r.neighbors.size(), nbrs.size());
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      ASSERT_EQ(r.neighbors[k], nbrs[k]);
      ASSERT_EQ(r.counts[k], direct[g.offset_begin(u) + k]);
    }
  }
}

TEST(ServiceRelabel, ScriptedSessionByteIdenticalToUnrelabeled) {
  // The golden-session contract: the exact same request stream produces
  // the exact same reply bytes whether or not the service relabels —
  // including mutations, publishes, error replies, and cache flags.
  const graph::Csr g = test_graph(73, 400, 2400);
  std::string script;
  {
    std::ostringstream s;
    s << "edge 1 2\nedge 2 1\nvertex 0\nvertex 399\n";
    s << "batch 1 2 3 4 5 6\n";
    // Mutations in external IDs: a fresh edge, a dup add, a delete.
    s << "add 0 399\nadd 0 399\ndel 1 2\npublish\n";
    s << "edge 0 399\nedge 1 2\nvertex 0\n";
    // Error paths: out-of-universe ids and malformed requests reply
    // identically (pass-through translation keeps rejection exact).
    s << "add 400 2\nedge 99999 3\nbogus request\n";
    s << "stats\n";
    script = s.str();
  }
  const auto run = [&](bool relabel) {
    serve::ServiceConfig cfg;
    cfg.relabel = relabel;
    cfg.engine.num_workers = 1;
    cfg.update.max_vertices = g.num_vertices();
    serve::Service svc(cfg);
    svc.publish(graph::Csr(g));
    std::istringstream in(script);
    std::ostringstream out;
    (void)serve::run_session(svc, in, out);
    return out.str();
  };
  const std::string off = run(false);
  const std::string on = run(true);
  EXPECT_EQ(off, on);
  EXPECT_NE(off.find("publish: epoch=2"), std::string::npos);
}

TEST(ServiceRelabel, PipelinePublishKeepsTranslationAttached) {
  // Mutations staged in external IDs must survive several pipeline
  // publishes: each publish carries the seeding map forward, so query
  // translation stays consistent with the maintained state.
  const graph::Csr g = test_graph(79, 300, 1800);
  serve::ServiceConfig cfg;
  cfg.relabel = true;
  cfg.update.max_vertices = g.num_vertices();
  serve::Service svc(cfg);
  svc.publish(graph::Csr(g));

  // Three rounds: add a new external edge, publish, check counts match a
  // direct recount of the mutated edge list.
  graph::EdgeList edges(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) edges.add(u, v);
    }
  }
  const std::vector<std::pair<VertexId, VertexId>> additions = {
      {0, 250}, {1, 299}, {2, 3}};
  for (const auto& [a, b] : additions) {
    if (g.has_edge(a, b)) continue;
    const update::Mutation m{update::kAddEdge, a, b};
    const auto report = svc.apply_updates({&m, 1});
    ASSERT_EQ(report.rejected, 0u);
    ASSERT_TRUE(svc.pending_count(a, b).has_value());
    EXPECT_EQ(svc.pending_count(a, b), svc.pending_count(b, a));
    (void)svc.publish();
    edges.add(a, b);
    const graph::Csr mutated = graph::Csr::from_edge_list(edges);
    const auto direct = core::count_common_neighbors(mutated);
    const auto r = svc.query_edge(a, b);
    EXPECT_TRUE(r.is_edge);
    EXPECT_EQ(r.count, direct[mutated.find_edge(a, b)]);
  }
}

}  // namespace
}  // namespace aecnc
