// Tests for the incremental counter: every state must agree with a full
// recount of the equivalent static graph, across random add/remove
// churn, bootstrap, and inverse-operation round trips.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/api.hpp"
#include "core/incremental.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "util/prng.hpp"

namespace aecnc::core {
namespace {

using graph::Csr;

/// Every maintained count must equal the brute-force count on the
/// snapshot; triangles must match Σcnt/6.
void expect_consistent(const IncrementalCounter& inc) {
  const Csr g = inc.to_csr();
  const auto reference = count_reference(g);
  std::uint64_t checked = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (u >= nbrs[k]) continue;
      const auto c = inc.count(u, nbrs[k]);
      ASSERT_TRUE(c.has_value()) << "(" << u << "," << nbrs[k] << ")";
      ASSERT_EQ(*c, reference[base + k]) << "(" << u << "," << nbrs[k] << ")";
      ++checked;
    }
  }
  EXPECT_EQ(checked, inc.num_edges());
  EXPECT_EQ(inc.triangles(), triangle_count_from(reference));
}

TEST(Incremental, EmptyStart) {
  IncrementalCounter inc;
  EXPECT_EQ(inc.num_edges(), 0u);
  EXPECT_EQ(inc.triangles(), 0u);
  EXPECT_FALSE(inc.count(0, 1).has_value());
}

TEST(Incremental, BuildTriangleByHand) {
  IncrementalCounter inc;
  EXPECT_TRUE(inc.add_edge(0, 1));
  EXPECT_TRUE(inc.add_edge(1, 2));
  EXPECT_EQ(inc.triangles(), 0u);
  EXPECT_EQ(*inc.count(0, 1), 0u);

  EXPECT_TRUE(inc.add_edge(0, 2));  // closes the triangle
  EXPECT_EQ(inc.triangles(), 1u);
  EXPECT_EQ(*inc.count(0, 1), 1u);
  EXPECT_EQ(*inc.count(1, 2), 1u);
  EXPECT_EQ(*inc.count(0, 2), 1u);

  EXPECT_TRUE(inc.remove_edge(0, 2));  // and opens it again
  EXPECT_EQ(inc.triangles(), 0u);
  EXPECT_EQ(*inc.count(0, 1), 0u);
  EXPECT_FALSE(inc.count(0, 2).has_value());
}

TEST(Incremental, RejectsSelfLoopsAndDuplicates) {
  IncrementalCounter inc;
  EXPECT_FALSE(inc.add_edge(3, 3));
  EXPECT_TRUE(inc.add_edge(1, 2));
  EXPECT_FALSE(inc.add_edge(2, 1));  // duplicate, either orientation
  EXPECT_EQ(inc.num_edges(), 1u);
  EXPECT_FALSE(inc.remove_edge(5, 6));  // not present
  EXPECT_FALSE(inc.remove_edge(1, 1));
}

TEST(Incremental, BootstrapMatchesBatch) {
  const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(400, 3000, 2.2, 71));
  const IncrementalCounter inc(g);
  EXPECT_EQ(inc.num_edges(), g.num_undirected_edges());
  expect_consistent(inc);
}

TEST(Incremental, RandomChurnStaysConsistent) {
  util::Xoshiro256 rng(73);
  IncrementalCounter inc(
      Csr::from_edge_list(graph::erdos_renyi(120, 600, 74)));

  for (int round = 0; round < 6; ++round) {
    // A burst of random insertions...
    for (int i = 0; i < 60; ++i) {
      inc.add_edge(rng.below(140), rng.below(140));
    }
    // ...and deletions of randomly chosen existing edges.
    for (int i = 0; i < 40; ++i) {
      const VertexId u = rng.below(static_cast<std::uint32_t>(inc.num_vertices()));
      const auto nbrs = inc.neighbors(u);
      if (!nbrs.empty()) {
        inc.remove_edge(u, nbrs[rng.below(static_cast<std::uint32_t>(nbrs.size()))]);
      }
    }
    expect_consistent(inc);
  }
}

TEST(Incremental, AddRemoveIsIdentity) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(200, 1500, 75));
  IncrementalCounter inc(g);
  const auto before_triangles = inc.triangles();

  // Add a batch of fresh edges, then remove them in reverse order.
  std::vector<std::pair<VertexId, VertexId>> added;
  util::Xoshiro256 rng(76);
  while (added.size() < 50) {
    const VertexId u = rng.below(200), v = rng.below(200);
    if (u != v && !inc.has_edge(u, v)) {
      inc.add_edge(u, v);
      added.emplace_back(u, v);
    }
  }
  for (auto it = added.rbegin(); it != added.rend(); ++it) {
    EXPECT_TRUE(inc.remove_edge(it->first, it->second));
  }
  EXPECT_EQ(inc.num_edges(), g.num_undirected_edges());
  EXPECT_EQ(inc.triangles(), before_triangles);
  expect_consistent(inc);
}

TEST(Incremental, GrowsVertexUniverseOnDemand) {
  IncrementalCounter inc;
  EXPECT_TRUE(inc.add_edge(1000, 2000));
  EXPECT_EQ(inc.num_vertices(), 2001u);
  EXPECT_TRUE(inc.has_edge(2000, 1000));
  EXPECT_EQ(*inc.count(1000, 2000), 0u);
}

TEST(Incremental, SnapshotRunsBatchAlgorithms) {
  IncrementalCounter inc;
  util::Xoshiro256 rng(77);
  for (int i = 0; i < 500; ++i) inc.add_edge(rng.below(100), rng.below(100));
  const Csr g = inc.to_csr();
  EXPECT_TRUE(g.validate().empty());
  const auto counts = count_common_neighbors(g);
  EXPECT_EQ(triangle_count_from(counts), inc.triangles());
}

// ---------------------------------------------------------------------------
// to_csr() round trips and batch entry points (the src/update substrate)

/// to_csr() must be a lossless structural snapshot: validate()-clean,
/// and re-seeding a fresh counter from it reproduces every count. The
/// second materialization must match the first slot for slot.
void expect_round_trips(const IncrementalCounter& inc) {
  const Csr g = inc.to_csr();
  ASSERT_EQ(g.validate(), "");
  EXPECT_EQ(g.num_undirected_edges(), inc.num_edges());
  EXPECT_EQ(g.num_vertices(), inc.num_vertices());

  const IncrementalCounter reseeded(g);
  EXPECT_EQ(reseeded.num_edges(), inc.num_edges());
  EXPECT_EQ(reseeded.triangles(), inc.triangles());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u >= v) continue;
      ASSERT_EQ(reseeded.count(u, v), inc.count(u, v))
          << "(" << u << "," << v << ")";
    }
  }

  const Csr again = reseeded.to_csr();
  ASSERT_EQ(again.num_vertices(), g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const auto a = g.neighbors(u);
    const auto b = again.neighbors(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()))
        << "vertex " << u;
  }
}

TEST(Incremental, RoundTripStar) {
  // Maximal skew: one hub, every intersection hub-vs-leaf.
  IncrementalCounter inc;
  for (VertexId leaf = 1; leaf <= 64; ++leaf) inc.add_edge(0, leaf);
  EXPECT_EQ(inc.triangles(), 0u);
  expect_round_trips(inc);
  expect_consistent(inc);
}

TEST(Incremental, RoundTripEqualDegreeClique) {
  // Zero skew: every vertex the same degree, every pair adjacent.
  constexpr VertexId k = 12;
  IncrementalCounter inc;
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) inc.add_edge(u, v);
  }
  EXPECT_EQ(inc.triangles(),
            static_cast<std::uint64_t>(k) * (k - 1) * (k - 2) / 6);
  for (VertexId u = 0; u < k; ++u) {
    for (VertexId v = u + 1; v < k; ++v) EXPECT_EQ(*inc.count(u, v), k - 2);
  }
  expect_round_trips(inc);
}

TEST(Incremental, RoundTripIsolatedVertices) {
  // Sparse ids leave isolated vertices inside the universe; the CSR
  // must keep them as empty rows, not compact them away.
  IncrementalCounter inc;
  inc.add_edge(3, 900);
  inc.add_edge(900, 901);
  inc.add_edge(3, 901);
  EXPECT_EQ(inc.num_vertices(), 902u);
  EXPECT_EQ(inc.triangles(), 1u);
  const Csr g = inc.to_csr();
  EXPECT_EQ(g.num_vertices(), 902u);
  EXPECT_TRUE(g.neighbors(500).empty());
  expect_round_trips(inc);
  expect_consistent(inc);
}

TEST(Incremental, ApplyBatchMixedOpsMatchesRecount) {
  IncrementalCounter inc(Csr::from_edge_list(graph::erdos_renyi(80, 400, 78)));
  std::vector<EdgeOp> ops;
  util::Xoshiro256 rng(79);
  for (int i = 0; i < 200; ++i) {
    const VertexId u = rng.below(80), v = rng.below(80);
    ops.push_back({rng.below(2) == 0 ? EdgeOpKind::kInsert : EdgeOpKind::kErase,
                   u, v});
  }
  ops.push_back({EdgeOpKind::kInsert, 5, 5});  // self loop: must no-op
  const auto stats = inc.apply_batch(ops);
  EXPECT_EQ(stats.inserted + stats.erased + stats.noops, ops.size());
  EXPECT_GE(stats.noops, 1u);
  expect_consistent(inc);
}

TEST(Incremental, StructuralApplyThenRecountMatchesDelta) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(100, 500, 80));
  std::vector<EdgeOp> ops;
  util::Xoshiro256 rng(81);
  for (int i = 0; i < 150; ++i) {
    ops.push_back({rng.below(2) == 0 ? EdgeOpKind::kInsert : EdgeOpKind::kErase,
                   rng.below(100), rng.below(100)});
  }

  IncrementalCounter delta(g);
  const auto ds = delta.apply_batch(ops);

  IncrementalCounter structural(g);
  const auto ss = structural.apply_batch_structural(ops);
  EXPECT_EQ(ss.inserted, ds.inserted);
  EXPECT_EQ(ss.erased, ds.erased);
  EXPECT_EQ(ss.noops, ds.noops);

  // Sequential and parallel recounts both restore exact counts.
  Options seq;
  seq.parallel = false;
  structural.recount(seq);
  expect_consistent(structural);
  for (VertexId u = 0; u < structural.num_vertices(); ++u) {
    for (const VertexId v : structural.neighbors(u)) {
      if (u >= v) continue;
      ASSERT_EQ(structural.count(u, v), delta.count(u, v))
          << "(" << u << "," << v << ")";
    }
  }
  EXPECT_EQ(structural.triangles(), delta.triangles());

  IncrementalCounter par(g);
  (void)par.apply_batch_structural(ops);
  par.recount();  // default options: parallel driver
  EXPECT_EQ(par.triangles(), delta.triangles());
}

}  // namespace
}  // namespace aecnc::core
