// Unit tests for src/graph: edge-list normalization, CSR construction and
// queries, degree-descending reorder, generators, serialization, stats.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/csr.hpp"
#include "graph/datasets.hpp"
#include "graph/edge_list.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "core/api.hpp"
#include "test_seed.hpp"

namespace aecnc::graph {
namespace {

using testsupport::mix_seed;

EdgeList triangle_with_tail() {
  // 0-1-2 triangle plus pendant 3 attached to 2.
  EdgeList e(4);
  e.add(0, 1);
  e.add(1, 2);
  e.add(2, 0);
  e.add(2, 3);
  return e;
}

TEST(EdgeList, NormalizeDropsSelfLoopsAndDuplicates) {
  EdgeList e(5);
  e.add(1, 0);
  e.add(0, 1);  // duplicate after canonicalization
  e.add(2, 2);  // self loop
  e.add(3, 4);
  e.normalize();
  EXPECT_EQ(e.num_edges(), 2u);
  EXPECT_EQ(e.edges()[0], (Edge{0, 1}));
  EXPECT_EQ(e.edges()[1], (Edge{3, 4}));
}

TEST(EdgeList, EnsureVerticesCoversEndpoints) {
  EdgeList e;
  e.add(0, 9);
  e.normalize();
  EXPECT_EQ(e.num_vertices(), 10u);
}

TEST(Csr, BuildSmallGraph) {
  const Csr g = Csr::from_edge_list(triangle_with_tail());
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_undirected_edges(), 4u);
  EXPECT_EQ(g.num_directed_edges(), 8u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_EQ(g.degree(3), 1u);
  const auto n2 = g.neighbors(2);
  ASSERT_EQ(n2.size(), 3u);
  EXPECT_EQ(n2[0], 0u);
  EXPECT_EQ(n2[1], 1u);
  EXPECT_EQ(n2[2], 3u);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(Csr, FindEdgeAndSrcOf) {
  const Csr g = Csr::from_edge_list(triangle_with_tail());
  const EdgeId e20 = g.find_edge(2, 0);
  EXPECT_LT(e20, g.num_directed_edges());
  EXPECT_EQ(g.dst_of(e20), 0u);
  EXPECT_EQ(g.src_of(e20), 2u);
  // Non-edge lookups return the sentinel.
  EXPECT_EQ(g.find_edge(0, 3), g.num_directed_edges());
  // Every slot round-trips through (src_of, dst_of, find_edge).
  for (EdgeId e = 0; e < g.num_directed_edges(); ++e) {
    const VertexId u = g.src_of(e);
    const VertexId v = g.dst_of(e);
    EXPECT_EQ(g.find_edge(u, v), e);
  }
}

TEST(Csr, EmptyGraph) {
  const Csr g = Csr::from_edge_list(EdgeList(3));
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_directed_edges(), 0u);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Csr, IsolatedVerticesGetEmptyRanges) {
  EdgeList e(6);
  e.add(1, 4);
  const Csr g = Csr::from_edge_list(e);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.degree(5), 0u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.src_of(g.find_edge(4, 1)), 4u);
}

// The reverse-edge index must satisfy two exact properties on every slot:
// it agrees with the binary-search oracle find_edge(v, u), and it is an
// involution (the mirror of the mirror is the slot itself).
void expect_reverse_index_exact(const Csr& g) {
  const auto& rev = g.reverse_offsets();
  ASSERT_EQ(rev.size(), g.num_directed_edges());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (EdgeId e = g.offset_begin(u); e < g.offset_end(u); ++e) {
      const VertexId v = g.dst_of(e);
      EXPECT_EQ(rev[e], g.find_edge(v, u)) << "slot " << e;
      EXPECT_EQ(g.dst_of(rev[e]), u) << "slot " << e;
      EXPECT_EQ(rev[rev[e]], e) << "slot " << e;
      EXPECT_EQ(g.reverse_slot(e), rev[e]);
    }
  }
}

TEST(Csr, ReverseOffsetsMatchFindEdgeOnAdversarialShapes) {
  // Isolated vertices interleaved with a sparse component.
  {
    EdgeList e(12);
    e.add(1, 4);
    e.add(1, 9);
    e.add(4, 9);
    expect_reverse_index_exact(Csr::from_edge_list(std::move(e)));
  }
  // Multi-hub skew: two hubs of degree ~400 over a sparse background.
  {
    auto hubby = erdos_renyi(600, 2500, mix_seed(35));
    add_hubs(hubby, 2, 400, 36);
    expect_reverse_index_exact(Csr::from_edge_list(std::move(hubby)));
  }
  // All-equal degrees: a cycle (degree 2 everywhere) and a clique.
  {
    EdgeList cycle(97);
    for (VertexId v = 0; v < 97; ++v) cycle.add(v, (v + 1) % 97);
    expect_reverse_index_exact(Csr::from_edge_list(std::move(cycle)));
  }
  expect_reverse_index_exact(Csr::from_edge_list(clique(8)));
  // Power-law tail.
  expect_reverse_index_exact(
      Csr::from_edge_list(chung_lu_power_law(800, 6000, 2.1, mix_seed(51))));
}

TEST(Csr, ReverseOffsetsOnEdgelessGraphs) {
  const Csr g = Csr::from_edge_list(EdgeList(5));
  EXPECT_TRUE(g.reverse_offsets().empty());
  // A default-constructed Csr has no cache at all; the accessor must
  // still be safe to call.
  const Csr empty;
  EXPECT_TRUE(empty.reverse_offsets().empty());
}

TEST(Csr, ReverseOffsetsSharedAcrossCopies) {
  const Csr g = Csr::from_edge_list(erdos_renyi(300, 1500, mix_seed(57)));
  const Csr copy = g;  // copies share the lazily-built cache
  EXPECT_EQ(copy.reverse_offsets().data(), g.reverse_offsets().data());
  expect_reverse_index_exact(copy);
}

TEST(Csr, HasEdgeAgreesWithFindEdge) {
  const Csr g = Csr::from_edge_list(triangle_with_tail());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(g.has_edge(u, v),
                g.find_edge(u, v) < g.num_directed_edges())
          << u << "-" << v;
    }
  }
}

TEST(Csr, MemoryBytesCountsBothArrays) {
  const Csr g = Csr::from_edge_list(triangle_with_tail());
  EXPECT_EQ(g.memory_bytes(),
            5 * sizeof(EdgeId) + 8 * sizeof(VertexId));
}

TEST(Reorder, PermutationIsDegreeDescending) {
  const Csr g = Csr::from_edge_list(triangle_with_tail());
  const Csr r = reorder_degree_descending(g);
  EXPECT_TRUE(is_degree_descending(r));
  EXPECT_TRUE(r.validate().empty()) << r.validate();
  // Vertex 2 (degree 3) must become vertex 0.
  EXPECT_EQ(r.degree(0), 3u);
}

TEST(Reorder, PreservesStructure) {
  const auto e = chung_lu_power_law(500, 2000, 2.3, mix_seed(99));
  const Csr g = Csr::from_edge_list(e);
  std::vector<VertexId> inverse;
  const Csr r = reorder_degree_descending(g, &inverse);
  ASSERT_EQ(r.num_directed_edges(), g.num_directed_edges());
  ASSERT_EQ(inverse.size(), g.num_vertices());
  // Spot check: each reordered edge maps back to an original edge.
  for (VertexId nu = 0; nu < r.num_vertices(); ++nu) {
    for (const VertexId nv : r.neighbors(nu)) {
      const VertexId ou = inverse[nu];
      const VertexId ov = inverse[nv];
      EXPECT_LT(g.find_edge(ou, ov), g.num_directed_edges());
    }
  }
}

TEST(Reorder, IdentityOnAlreadySortedGraph) {
  // Star graph: center has max degree and lowest id after reorder.
  EdgeList e(5);
  for (VertexId v = 1; v < 5; ++v) e.add(0, v);
  const Csr g = Csr::from_edge_list(e);
  const auto perm = degree_descending_permutation(g);
  EXPECT_EQ(perm[0], 0u);
}

TEST(IdMap, DefaultIsIdentityWithPassThrough) {
  const IdMap map;
  EXPECT_TRUE(map.is_identity());
  EXPECT_EQ(map.size(), 0u);
  EXPECT_TRUE(map.validate().empty()) << map.validate();
  for (const VertexId v : {VertexId{0}, VertexId{7}, VertexId{123456}}) {
    EXPECT_EQ(map.to_internal(v), v);
    EXPECT_EQ(map.to_external(v), v);
  }
}

TEST(IdMap, ReorderRoundTripsEveryVertex) {
  const Csr g =
      Csr::from_edge_list(chung_lu_power_law(700, 4000, 2.2, mix_seed(61)));
  IdMap map;
  const Csr r = reorder_degree_descending(g, &map);
  EXPECT_TRUE(is_degree_descending(r));
  EXPECT_FALSE(map.is_identity());
  ASSERT_EQ(map.size(), g.num_vertices());
  EXPECT_TRUE(map.validate().empty()) << map.validate();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(map.to_external(map.to_internal(v)), v);
    EXPECT_EQ(map.to_internal(map.to_external(v)), v);
    // The relabeled vertex keeps its degree.
    EXPECT_EQ(r.degree(map.to_internal(v)), g.degree(v));
  }
  // Out-of-range ids pass through unchanged in both directions, so
  // downstream range checks reject exactly what they rejected unmapped.
  const VertexId beyond = g.num_vertices() + 5;
  EXPECT_EQ(map.to_internal(beyond), beyond);
  EXPECT_EQ(map.to_external(beyond), beyond);
}

TEST(IdMap, AgreesWithInverseVectorOverload) {
  const Csr g = Csr::from_edge_list(erdos_renyi(400, 1800, mix_seed(63)));
  std::vector<VertexId> inverse;
  const Csr via_vector = reorder_degree_descending(g, &inverse);
  IdMap map;
  const Csr via_map = reorder_degree_descending(g, &map);
  EXPECT_EQ(via_vector.offsets(), via_map.offsets());
  EXPECT_EQ(via_vector.dst(), via_map.dst());
  ASSERT_EQ(inverse.size(), map.size());
  for (VertexId internal = 0; internal < map.size(); ++internal) {
    EXPECT_EQ(map.to_external(internal), inverse[internal]);
  }
}

TEST(IdMap, TranslatedEdgesExistInBothSpaces) {
  const Csr g =
      Csr::from_edge_list(chung_lu_power_law(300, 1500, 2.4, mix_seed(67)));
  IdMap map;
  const Csr r = reorder_degree_descending(g, &map);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      EXPECT_TRUE(r.has_edge(map.to_internal(u), map.to_internal(v)));
    }
  }
}

TEST(Generators, ErdosRenyiProducesRequestedEdges) {
  const auto e = erdos_renyi(1000, 5000, mix_seed(1));
  EXPECT_EQ(e.num_edges(), 5000u);
  const Csr g = Csr::from_edge_list(e);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
}

TEST(Generators, ErdosRenyiIsDeterministic) {
  const auto a = erdos_renyi(500, 2000, mix_seed(7));
  const auto b = erdos_renyi(500, 2000, mix_seed(7));
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(Generators, ChungLuHasPowerLawSkew) {
  const auto e = chung_lu_power_law(5000, 40000, 2.1, mix_seed(3));
  const Csr g = Csr::from_edge_list(e);
  EXPECT_TRUE(g.validate().empty());
  const auto s = compute_stats(g);
  // Tail exponent ~2 gives a hub far above the average degree.
  EXPECT_GT(s.max_degree, 10 * s.avg_degree);
}

TEST(Generators, ChungLuExponentControlsSkew) {
  const auto skewed = chung_lu_power_law(4000, 30000, 2.0, mix_seed(5));
  const auto uniform = chung_lu_power_law(4000, 30000, 6.0, mix_seed(5));
  const auto gs = Csr::from_edge_list(skewed);
  const auto gu = Csr::from_edge_list(uniform);
  EXPECT_GT(gs.max_degree(), gu.max_degree());
}

TEST(Generators, RmatShapeAndDeterminism) {
  const auto a = rmat(10, 8000, {}, 13);
  const auto b = rmat(10, 8000, {}, 13);
  EXPECT_EQ(a.edges(), b.edges());
  EXPECT_LE(a.num_vertices(), 1u << 10);
  const Csr g = Csr::from_edge_list(a);
  EXPECT_TRUE(g.validate().empty());
}

TEST(Generators, AddHubsCreatesHighDegreeVertices) {
  auto e = erdos_renyi(2000, 6000, mix_seed(21));
  add_hubs(e, 3, 800, 22);
  const Csr g = Csr::from_edge_list(e);
  EXPECT_EQ(g.num_vertices(), 2003u);
  int hubs = 0;
  for (VertexId u = 2000; u < 2003; ++u) hubs += (g.degree(u) >= 700);
  EXPECT_EQ(hubs, 3);
}

TEST(Generators, BarabasiAlbertShape) {
  const auto e = barabasi_albert(3000, 4, 41);
  const Csr g = Csr::from_edge_list(e);
  EXPECT_TRUE(g.validate().empty()) << g.validate();
  // Every late vertex attaches to `attach` older ones: m ~ 4 * n.
  EXPECT_NEAR(static_cast<double>(g.num_undirected_edges()), 4.0 * 3000,
              0.05 * 4 * 3000);
  // Preferential attachment grows hubs: max degree far above the mean.
  const auto s = compute_stats(g);
  EXPECT_GT(s.max_degree, 6 * s.avg_degree);
  // Deterministic.
  EXPECT_EQ(barabasi_albert(3000, 4, 41).edges(), e.edges());
}

TEST(Generators, WattsStrogatzShape) {
  const auto lattice = watts_strogatz(2000, 4, 0.0, mix_seed(43));
  const Csr gl = Csr::from_edge_list(lattice);
  EXPECT_TRUE(gl.validate().empty());
  // Pure ring lattice: every vertex has exactly 2k neighbors.
  for (VertexId v = 0; v < gl.num_vertices(); ++v) {
    EXPECT_EQ(gl.degree(v), 8u) << v;
  }
  // Rewiring keeps the edge count but spreads the degrees.
  const auto rewired = watts_strogatz(2000, 4, 0.3, mix_seed(43));
  const Csr gr = Csr::from_edge_list(rewired);
  EXPECT_TRUE(gr.validate().empty());
  EXPECT_NEAR(static_cast<double>(gr.num_undirected_edges()),
              static_cast<double>(gl.num_undirected_edges()),
              0.05 * static_cast<double>(gl.num_undirected_edges()));
  EXPECT_GT(gr.max_degree(), 8u);
}

TEST(Generators, WattsStrogatzIsTriangleDense) {
  // The ring lattice at k=4 is rich in triangles (each vertex closes
  // wedges with its near neighbors); full rewiring destroys them.
  const Csr lattice =
      Csr::from_edge_list(watts_strogatz(1000, 4, 0.0, mix_seed(47)));
  const Csr random =
      Csr::from_edge_list(watts_strogatz(1000, 4, 1.0, mix_seed(47)));
  const auto lattice_counts = aecnc::core::count_common_neighbors(lattice);
  const auto random_counts = aecnc::core::count_common_neighbors(random);
  const auto tri = [](const aecnc::core::CountArray& c) {
    std::uint64_t s = 0;
    for (const auto x : c) s += x;
    return s / 6;
  };
  EXPECT_GT(tri(lattice_counts), 5 * tri(random_counts));
}

TEST(Generators, CliqueHasAllPairs) {
  const Csr g = Csr::from_edge_list(clique(6));
  EXPECT_EQ(g.num_undirected_edges(), 15u);
  for (VertexId u = 0; u < 6; ++u) EXPECT_EQ(g.degree(u), 5u);
}

TEST(Stats, MatchesHandComputedValues) {
  const Csr g = Csr::from_edge_list(triangle_with_tail());
  const auto s = compute_stats(g);
  EXPECT_EQ(s.num_vertices, 4u);
  EXPECT_EQ(s.num_undirected_edges, 4u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 2.0);
  EXPECT_EQ(s.max_degree, 3u);
}

TEST(Stats, SkewPercentageOnStar) {
  // Star center degree 100 vs leaves degree 1: every edge skewed at t=50.
  EdgeList e(101);
  for (VertexId v = 1; v <= 100; ++v) e.add(0, v);
  const Csr g = Csr::from_edge_list(e);
  EXPECT_DOUBLE_EQ(skewed_intersection_percentage(g, 50.0), 100.0);
  // ... and not skewed at threshold 1000.
  EXPECT_DOUBLE_EQ(skewed_intersection_percentage(g, 1000.0), 0.0);
}

TEST(Stats, SkewPercentageOnClique) {
  const Csr g = Csr::from_edge_list(clique(8));
  EXPECT_DOUBLE_EQ(skewed_intersection_percentage(g, 50.0), 0.0);
}

TEST(Stats, DegreeHistogramBuckets) {
  // Star: one vertex of degree 100 (bucket 6: 64..127), 100 of degree 1.
  EdgeList e(101);
  for (VertexId v = 1; v <= 100; ++v) e.add(0, v);
  const auto h = degree_histogram(Csr::from_edge_list(e));
  ASSERT_EQ(h.size(), 7u);
  EXPECT_EQ(h[0], 100u);  // degree 1
  EXPECT_EQ(h[6], 1u);    // degree 100
  std::uint64_t total = 0;
  for (const auto b : h) total += b;
  EXPECT_EQ(total, 101u);
}

TEST(Stats, DegreeHistogramEmptyGraph) {
  const auto h = degree_histogram(Csr::from_edge_list(EdgeList(5)));
  ASSERT_EQ(h.size(), 1u);
  EXPECT_EQ(h[0], 5u);  // all degree 0
}

TEST(Io, EdgeListTextRoundTrip) {
  const auto e = erdos_renyi(200, 800, mix_seed(17));
  std::stringstream buffer;
  write_edge_list_text(e, buffer);
  const auto back = read_edge_list_text(buffer);
  EXPECT_EQ(back.num_vertices(), e.num_vertices());
  EXPECT_EQ(back.edges(), e.edges());
}

TEST(Io, EdgeListTextSkipsComments) {
  std::stringstream in("# comment\n% also comment\n0 1\n1 2\n");
  const auto e = read_edge_list_text(in);
  EXPECT_EQ(e.num_edges(), 2u);
}

TEST(Io, EdgeListTextRejectsMalformedLines) {
  std::stringstream in("0 1\nnot numbers\n");
  EXPECT_THROW((void)read_edge_list_text(in), std::runtime_error);
}

TEST(Io, CsrBinaryRoundTrip) {
  const Csr g = Csr::from_edge_list(erdos_renyi(300, 1500, mix_seed(23)));
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  write_csr_binary(g, buffer);
  const Csr back = read_csr_binary(buffer);
  EXPECT_EQ(back.offsets(), g.offsets());
  EXPECT_EQ(back.dst(), g.dst());
}

TEST(Io, CsrBinaryRejectsBadMagic) {
  std::stringstream buffer("THIS IS NOT A CSR FILE AT ALL");
  EXPECT_THROW((void)read_csr_binary(buffer), std::runtime_error);
}

class DatasetReplicaTest : public ::testing::TestWithParam<DatasetId> {};

TEST_P(DatasetReplicaTest, MatchesPaperSignature) {
  const DatasetId id = GetParam();
  const Csr g = make_dataset(id, 2e-4);
  EXPECT_TRUE(g.validate().empty()) << g.validate();

  const auto stats = compute_stats(g);
  const auto& paper = paper_stats(id);
  // Average degree within 40% of the original (generation at tiny scale
  // loses some edges to dedup in the dense head).
  EXPECT_GT(stats.avg_degree, 0.6 * paper.avg_degree)
      << dataset_name(id) << " avg degree " << stats.avg_degree;
  EXPECT_LT(stats.avg_degree, 1.4 * paper.avg_degree)
      << dataset_name(id) << " avg degree " << stats.avg_degree;

  // Skew class must match Table 2: heavy (WI/TW), moderate (LJ),
  // low (OR), none (FR).
  const double skew = skewed_intersection_percentage(g, 50.0);
  switch (id) {
    case DatasetId::kWebIt:
    case DatasetId::kTwitter:
      EXPECT_GT(skew, 15.0) << dataset_name(id) << " skew " << skew;
      break;
    case DatasetId::kLiveJournal:
      EXPECT_GT(skew, 2.0) << " skew " << skew;
      EXPECT_LT(skew, 30.0) << " skew " << skew;
      break;
    case DatasetId::kOrkut:
      EXPECT_LT(skew, 12.0) << " skew " << skew;
      break;
    case DatasetId::kFriendster:
      // The paper rounds FR to 0%; the replica's fat-but-balanced tail
      // leaves a small residue.
      EXPECT_LT(skew, 5.0) << " skew " << skew;
      break;
  }
}

TEST_P(DatasetReplicaTest, DeterministicAcrossCalls) {
  const Csr a = make_dataset(GetParam(), 1e-4);
  const Csr b = make_dataset(GetParam(), 1e-4);
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.dst(), b.dst());
}

INSTANTIATE_TEST_SUITE_P(AllDatasets, DatasetReplicaTest,
                         ::testing::ValuesIn(kAllDatasets),
                         [](const auto& info) {
                           return std::string(dataset_name(info.param));
                         });

TEST(Datasets, NamesRoundTrip) {
  for (const DatasetId id : kAllDatasets) {
    EXPECT_EQ(dataset_from_name(dataset_name(id)), id);
  }
  EXPECT_THROW((void)dataset_from_name("XX"), std::invalid_argument);
}

}  // namespace
}  // namespace aecnc::graph
