// libFuzzer harness for the two text parsers that face untrusted input:
// the serve-session interpreter (src/serve/session.cpp) and the
// mutation-file replay (src/update/replay.cpp). Both are the exact code
// the CLI drives, extracted into the library for this harness.
//
// Input shape: byte 0 selects the mode (even = serve session, odd =
// mutation replay); the rest is the script text. The CI smoke run seeds
// the corpus from the golden sessions in tests/data/ with the mode byte
// prepended, so the fuzzer starts from every request form the goldens
// exercise and mutates outward.
//
// Build: -DAECNC_FUZZ=ON (Clang only), typically with
// -DAECNC_SANITIZE=address so the whole library is instrumented:
//   ./fuzz_session -max_total_time=30 -close_fd_mask=3 corpus/
//
// The harness asserts nothing beyond "no crash, no sanitizer report":
// both parsers are specified to answer malformed lines with an error
// reply and keep going, so any abort, OOM, or ASan finding is a bug.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <utility>

#include "graph/generators.hpp"
#include "serve/service.hpp"
#include "serve/session.hpp"
#include "serve/snapshot_store.hpp"
#include "update/pipeline.hpp"
#include "update/replay.hpp"

namespace {

using namespace aecnc;

// Small but non-trivial fixture: dense enough that random small vertex
// ids hit real edges, cached counts, and delete paths. Deterministic so
// every crash reproduces from the input alone.
graph::Csr fixture_graph() {
  return graph::Csr::from_edge_list(graph::erdos_renyi(32, 120, /*seed=*/7));
}

void fuzz_serve_session(std::istream& in, std::ostream& out) {
  serve::ServiceConfig cfg;
  cfg.engine.num_workers = 1;     // parser bugs don't need pool threads
  cfg.engine.task_size = 16;
  cfg.cache_capacity = 64;        // small: eviction paths get exercised
  graph::Csr g = fixture_graph();
  cfg.update.max_vertices = g.num_vertices();
  serve::Service svc(cfg);
  svc.publish(std::move(g));
  (void)serve::run_session(svc, in, out);
}

void fuzz_mutation_replay(std::istream& in, std::ostream& out) {
  graph::Csr g = fixture_graph();
  update::PipelineConfig cfg;
  cfg.max_batch = 8;              // small: drain/resubmit paths trigger
  cfg.max_vertices = g.num_vertices();
  cfg.recount_options.parallel = false;
  update::UpdatePipeline pipe(g, cfg);
  serve::SnapshotStore store(std::move(g));
  (void)update::run_replay(pipe, store, in, out);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  std::istringstream in(
      std::string(reinterpret_cast<const char*>(data + 1), size - 1));
  std::ostringstream out;
  if ((data[0] & 1U) == 0) {
    fuzz_serve_session(in, out);
  } else {
    fuzz_mutation_replay(in, out);
  }
  return 0;
}
