// libFuzzer harness for the frame decoder (src/net/frame.cpp) — the one
// component that parses bytes straight off a socket from another
// process. The decoder's contract under arbitrary input: yield frames,
// ask for more, or fail with a terminal typed error — never read out of
// bounds, never allocate proportionally to an attacker-chosen length
// prefix, never loop forever.
//
// Input shape: byte 0 picks the feed chunking (1, 3, 7, or all-at-once;
// re-chunking the same stream must not change the decode), the rest is
// the raw stream. The CI smoke run seeds the corpus with valid encoded
// frames so mutations start from the accepting path and walk outward.
//
// Build: -DAECNC_FUZZ=ON (Clang only), typically with
// -DAECNC_SANITIZE=address:
//   ./fuzz_frame -max_total_time=30 corpus/
#include <cstddef>
#include <cstdint>

#include "net/frame.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  static constexpr std::size_t kChunks[] = {1, 3, 7, ~std::size_t{0}};
  const std::size_t chunk = kChunks[data[0] & 3];
  ++data;
  --size;

  aecnc::net::FrameDecoder decoder;
  aecnc::net::Frame frame;
  std::size_t off = 0;
  while (off < size) {
    const std::size_t n = size - off < chunk ? size - off : chunk;
    decoder.feed(data + off, n);
    off += n;
    for (;;) {
      const auto st = decoder.next(frame);
      if (st == aecnc::net::FrameDecoder::Status::kFrame) continue;
      if (st == aecnc::net::FrameDecoder::Status::kError) {
        // Terminal: the error must stick and the buffer must be gone.
        if (decoder.error().empty() || decoder.buffered() != 0) {
          __builtin_trap();
        }
        return 0;
      }
      break;  // kNeedMore: feed the next chunk
    }
  }
  return 0;
}
