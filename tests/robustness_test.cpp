// Robustness and failure-injection tests: malformed inputs, corrupt
// serialized data, degenerate graphs, and invalid-structure detection —
// the paths a downstream user hits first.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "core/api.hpp"
#include "core/triangle.hpp"
#include "core/verify.hpp"
#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "gpusim/runner.hpp"
#include "scan/scan.hpp"

namespace aecnc {
namespace {

using graph::Csr;
using graph::EdgeList;

// --- CSR structural validation ------------------------------------------------

TEST(Validate, DetectsUnsortedAdjacency) {
  // Hand-build a CSR with an out-of-order neighbor list.
  std::vector<EdgeId> offsets = {0, 2, 3, 4};
  util::AlignedVector<VertexId> dst = {2, 1, 0, 0};  // N(0) = {2,1}: unsorted
  const Csr g = Csr::from_raw(std::move(offsets), std::move(dst));
  EXPECT_NE(g.validate().find("not sorted"), std::string::npos);
}

TEST(Validate, DetectsSelfLoop) {
  std::vector<EdgeId> offsets = {0, 1, 2};
  util::AlignedVector<VertexId> dst = {0, 0};  // N(0) = {0}: self loop
  const Csr g = Csr::from_raw(std::move(offsets), std::move(dst));
  EXPECT_NE(g.validate().find("self loop"), std::string::npos);
}

TEST(Validate, DetectsAsymmetricEdge) {
  std::vector<EdgeId> offsets = {0, 1, 1};
  util::AlignedVector<VertexId> dst = {1};  // 0->1 without 1->0
  const Csr g = Csr::from_raw(std::move(offsets), std::move(dst));
  EXPECT_NE(g.validate().find("asymmetric"), std::string::npos);
}

TEST(Validate, DetectsOutOfRangeNeighbor) {
  std::vector<EdgeId> offsets = {0, 1, 2};
  util::AlignedVector<VertexId> dst = {9, 0};
  const Csr g = Csr::from_raw(std::move(offsets), std::move(dst));
  EXPECT_NE(g.validate().find("out of range"), std::string::npos);
}

// --- Serialization failure injection -------------------------------------------

TEST(IoRobustness, TruncatedBinaryCsrThrows) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(100, 400, 1));
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  graph::write_csr_binary(g, buffer);
  std::string bytes = buffer.str();
  for (const std::size_t keep : {bytes.size() / 2, std::size_t{20},
                                 std::size_t{9}}) {
    std::stringstream truncated(bytes.substr(0, keep),
                                std::ios::in | std::ios::binary);
    EXPECT_THROW((void)graph::read_csr_binary(truncated), std::runtime_error)
        << "kept " << keep << " bytes";
  }
}

TEST(IoRobustness, BitFlippedHeaderRejected) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(50, 200, 2));
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  graph::write_csr_binary(g, buffer);
  std::string bytes = buffer.str();
  bytes[3] ^= 0x40;  // corrupt the magic
  std::stringstream corrupt(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW((void)graph::read_csr_binary(corrupt), std::runtime_error);
}

TEST(IoRobustness, MissingFilesThrowWithPath) {
  try {
    (void)graph::load_edge_list_text("/nonexistent/path/graph.txt");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/path/graph.txt"),
              std::string::npos);
  }
  EXPECT_THROW((void)graph::load_csr_binary("/nonexistent/path/graph.csr"),
               std::runtime_error);
}

TEST(IoRobustness, OversizedVertexIdRejected) {
  std::stringstream in("0 4294967296\n");  // 2^32 does not fit VertexId
  EXPECT_THROW((void)graph::read_edge_list_text(in), std::runtime_error);
}

TEST(IoRobustness, NegativeNumbersRejected) {
  std::stringstream in("0 -5\n");
  EXPECT_THROW((void)graph::read_edge_list_text(in), std::runtime_error);
}

// --- Degenerate graphs across the whole stack -----------------------------------

TEST(Degenerate, SingleEdgeGraphEverywhere) {
  EdgeList e(2);
  e.add(0, 1);
  const Csr g = Csr::from_edge_list(std::move(e));

  for (const auto algo :
       {core::Algorithm::kMergeBaseline, core::Algorithm::kMps,
        core::Algorithm::kBmp}) {
    core::Options o;
    o.algorithm = algo;
    const auto cnt = core::count_common_neighbors(g, o);
    EXPECT_EQ(cnt, (core::CountArray{0, 0})) << core::algorithm_name(algo);
  }
  EXPECT_EQ(core::count_triangles(g), 0u);

  gpusim::GpuRunConfig cfg;
  cfg.algorithm = core::Algorithm::kBmp;
  EXPECT_EQ(gpusim::run_gpu(g, cfg).counts, (core::CountArray{0, 0}));

  const auto clusters = scan::cluster(g, {.epsilon = 0.1, .mu = 2});
  EXPECT_EQ(clusters.num_clusters, 1u);  // both endpoints are cores at mu=2
}

TEST(Degenerate, AllIsolatedVertices) {
  const Csr g = Csr::from_edge_list(EdgeList(100));
  EXPECT_TRUE(core::count_common_neighbors(g).empty());
  EXPECT_EQ(core::count_triangles(g), 0u);
  const auto result = scan::cluster(g, {});
  EXPECT_EQ(result.num_clusters, 0u);
  EXPECT_EQ(result.count_role(scan::Role::kOutlier), 100u);
}

TEST(Degenerate, StarHasNoCommonNeighbors) {
  EdgeList e(50);
  for (VertexId v = 1; v < 50; ++v) e.add(0, v);
  const Csr g = Csr::from_edge_list(std::move(e));
  for (const CnCount c : core::count_common_neighbors(g)) EXPECT_EQ(c, 0u);
}

TEST(Degenerate, GpuRunRejectsBaselineAlgorithm) {
  const Csr g = Csr::from_edge_list(graph::clique(4));
  gpusim::GpuRunConfig cfg;
  cfg.algorithm = core::Algorithm::kMergeBaseline;
  EXPECT_THROW((void)gpusim::run_gpu(g, cfg), std::invalid_argument);
}

TEST(Degenerate, SparseHighIdUniverse) {
  // A lone triangle at the top of a million-vertex universe: offset
  // arrays handle long runs of zero-degree vertices, and the source
  // lookup still resolves across them.
  EdgeList e;
  const VertexId base = (1u << 20) - 4;
  e.add(base, base + 1);
  e.add(base + 1, base + 2);
  e.add(base, base + 2);
  e.ensure_vertices(1u << 20);
  const Csr g = Csr::from_edge_list(std::move(e));
  EXPECT_EQ(g.num_vertices(), 1u << 20);
  const EdgeId slot = g.find_edge(base, base + 1);
  ASSERT_LT(slot, g.num_directed_edges());
  EXPECT_EQ(g.src_of(slot), base);
  const auto cnt = core::count_common_neighbors(g);
  EXPECT_EQ(cnt[slot], 1u);  // the third triangle corner
  EXPECT_EQ(core::triangle_count_from(cnt), 1u);
}

}  // namespace
}  // namespace aecnc
