// Tests for the performance-model layer: profile collection, effective
// parallelism, and the qualitative orderings the models must reproduce
// (the paper's findings are orderings, not absolute numbers).
#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "perf/collect.hpp"
#include "perf/models.hpp"
#include "perf/specs.hpp"

namespace aecnc::perf {
namespace {

using core::Algorithm;
using core::Options;
using graph::Csr;

const Csr& tw_replica() {
  static const Csr g = graph::reorder_degree_descending(
      graph::make_dataset(graph::DatasetId::kTwitter, 2e-4));
  return g;
}

const Csr& fr_replica() {
  static const Csr g = graph::reorder_degree_descending(
      graph::make_dataset(graph::DatasetId::kFriendster, 2e-4));
  return g;
}

Options opts(Algorithm a, intersect::MergeKind kind = intersect::MergeKind::kScalar,
             bool rf = false) {
  Options o;
  o.algorithm = a;
  o.mps.kind = kind;
  o.bmp_range_filter = rf;
  // Scale-adjusted range-filter ratio: the paper's 4096 is tuned for
  // ~10^8-vertex graphs; 64 preserves the summary:bitmap sparsity the
  // filter exploits at replica scale (see DESIGN.md).
  o.rf_range_scale = 64;
  return o;
}

/// The replicas are built at scale 2e-4; modeling the paper's machines
/// requires the full datasets' footprints, so profiles are scaled back up
/// (see scale_profile).
constexpr double kReplicaScale = 2e-4;

WorkProfile profile_of(const Csr& g, const Options& o) {
  return scale_profile(collect_profile(g, o).profile, 1.0 / kReplicaScale);
}

TEST(Collect, ProfileCarriesStructuralData) {
  const auto& g = tw_replica();
  const auto run = collect_profile(g, opts(Algorithm::kBmp));
  EXPECT_EQ(run.profile.num_vertices, g.num_vertices());
  EXPECT_EQ(run.profile.directed_slots, g.num_directed_edges());
  EXPECT_TRUE(run.profile.is_bmp);
  EXPECT_EQ(run.profile.bitmap_bytes, (g.num_vertices() + 63) / 64 * 8);
  EXPECT_GT(run.profile.work.bitmap_probes, 0u);
  // Counts from the instrumented run are correct.
  EXPECT_FALSE(
      core::diff_counts(g, run.counts, core::count_reference(g)).has_value());
}

TEST(Collect, VectorLanesFollowMergeKind) {
  const auto& g = fr_replica();
  EXPECT_EQ(profile_of(g, opts(Algorithm::kMps, intersect::MergeKind::kScalar))
                .vector_lanes, 1);
  EXPECT_EQ(profile_of(g, opts(Algorithm::kMps, intersect::MergeKind::kAvx2))
                .vector_lanes, 8);
  EXPECT_EQ(profile_of(g, opts(Algorithm::kMps, intersect::MergeKind::kAvx512))
                .vector_lanes, 16);
  EXPECT_EQ(profile_of(g, opts(Algorithm::kBmp)).vector_lanes, 1);
}

TEST(Collect, TimeNativeIsPositiveAndFinite) {
  const auto& g = fr_replica();
  const double t = time_native(g, opts(Algorithm::kMps), 1);
  EXPECT_GT(t, 0.0);
  EXPECT_LT(t, 60.0);
}

TEST(EffectiveParallelism, CoresThenSmtThenFlat) {
  const auto& cpu = xeon_e5_2680_spec();
  EXPECT_DOUBLE_EQ(effective_parallelism(cpu, 1), 1.0);
  EXPECT_DOUBLE_EQ(effective_parallelism(cpu, 28), 28.0);
  const double at56 = effective_parallelism(cpu, 56);
  EXPECT_GT(at56, 28.0);
  EXPECT_LT(at56, 56.0);
  // Beyond all hardware contexts: flat.
  EXPECT_DOUBLE_EQ(effective_parallelism(cpu, 64), at56);
}

TEST(Model, MoreThreadsNeverSlower) {
  const auto p = profile_of(tw_replica(), opts(Algorithm::kMps));
  const auto& knl = knl_7210_spec();
  double prev = 1e300;
  for (const int t : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    const double s = model_cpu_like(knl, p, t).seconds;
    EXPECT_LE(s, prev * 1.0001) << t << " threads";
    prev = s;
  }
}

TEST(Model, Fig3Shape_SkewHandlingOnTwitter) {
  // Paper Fig 3 (TW): single-threaded, MPS clearly beats M, BMP beats
  // MPS, on both processors.
  const auto& g = tw_replica();
  const auto m = profile_of(g, opts(Algorithm::kMergeBaseline));
  const auto mps = profile_of(g, opts(Algorithm::kMps));
  const auto bmp = profile_of(g, opts(Algorithm::kBmp));
  for (const auto* spec : {&xeon_e5_2680_spec(), &knl_7210_spec()}) {
    const double tm = model_cpu_like(*spec, m, 1).seconds;
    const double tmps = model_cpu_like(*spec, mps, 1).seconds;
    const double tbmp = model_cpu_like(*spec, bmp, 1).seconds;
    // Paper: 3.6x/7.1x (MPS) and 20.1x/29.3x (BMP). The replica's hubs
    // are ~1000x smaller than twitter's (1.4M-degree) celebrities, which
    // compresses the gap; the ordering must still hold clearly.
    EXPECT_GT(tm / tmps, 1.05) << spec->name;
    EXPECT_GT(tm / tbmp, 1.5) << spec->name;
    EXPECT_GT(tmps, tbmp) << spec->name;
  }
}

TEST(Model, Fig3Shape_FriendsterIsNotSkewed) {
  // Paper Fig 3 (FR): MPS ~ M (no skew to exploit).
  const auto& g = fr_replica();
  const auto m = profile_of(g, opts(Algorithm::kMergeBaseline));
  const auto mps = profile_of(g, opts(Algorithm::kMps));
  const auto& cpu = xeon_e5_2680_spec();
  const double tm = model_cpu_like(cpu, m, 1).seconds;
  const double tmps = model_cpu_like(cpu, mps, 1).seconds;
  EXPECT_GT(tm / tmps, 0.5);
  EXPECT_LT(tm / tmps, 2.0);
}

TEST(Model, Fig4Shape_VectorizationSpeedsUpMps) {
  // Wider lanes -> faster MPS; AVX-512 gain over scalar lands in the
  // paper's 2-3.5x band on both TW and FR.
  for (const auto* g : {&tw_replica(), &fr_replica()}) {
    const auto scalar =
        profile_of(*g, opts(Algorithm::kMps, intersect::MergeKind::kScalar));
    const auto avx2 =
        profile_of(*g, opts(Algorithm::kMps, intersect::MergeKind::kAvx2));
    const auto avx512 =
        profile_of(*g, opts(Algorithm::kMps, intersect::MergeKind::kAvx512));
    const auto& cpu = xeon_e5_2680_spec();
    const double ts = model_cpu_like(cpu, scalar, 1).seconds;
    const double t2 = model_cpu_like(cpu, avx2, 1).seconds;
    const double t512 = model_cpu_like(cpu, avx512, 1).seconds;
    // Paper: 1.9-2.0x (AVX2) and 2.6x (AVX-512). On the TW replica the
    // pivot-skip share is inflated (small hubs), Amdahl-compressing the
    // vector gain; require a clear gain and the 512 >= 2 ordering.
    EXPECT_GT(ts / t2, 1.15);
    EXPECT_LT(ts / t2, 4.0);
    EXPECT_GE(ts / t512, ts / t2);  // 512 at least matches AVX2
  }
}

TEST(Model, Fig5Shape_MpsScalesFurtherThanBmp) {
  // Paper Fig 5: on the KNL, MPS keeps scaling to 64+ threads while BMP
  // saturates earlier and never scales past it.
  const auto& g = tw_replica();
  const auto mps = profile_of(
      g, opts(Algorithm::kMps, intersect::MergeKind::kAvx512));
  const auto bmp = profile_of(g, opts(Algorithm::kBmp));
  const auto& knl = knl_7210_spec();

  const double mps_speedup = model_cpu_like(knl, mps, 1).seconds /
                             model_cpu_like(knl, mps, 64).seconds;
  const double bmp_speedup = model_cpu_like(knl, bmp, 1).seconds /
                             model_cpu_like(knl, bmp, 64).seconds;
  EXPECT_GT(mps_speedup, bmp_speedup);
  EXPECT_GT(mps_speedup, 20.0);
}

TEST(Model, Fig7Shape_McdramHelpsMpsMoreThanBmp) {
  // Paper Fig 7: flat-mode MCDRAM gives MPS 1.6-1.8x (bandwidth-bound)
  // and BMP only 1.2-1.3x (latency-bound).
  const auto& g = tw_replica();
  const auto mps = profile_of(
      g, opts(Algorithm::kMps, intersect::MergeKind::kAvx512));
  const auto bmp = profile_of(g, opts(Algorithm::kBmp));
  const auto& knl = knl_7210_spec();
  const int t = 256;

  const double mps_gain = model_cpu_like(knl, mps, t, MemMode::kDram).seconds /
                          model_cpu_like(knl, mps, t, MemMode::kHbmFlat).seconds;
  const double bmp_gain = model_cpu_like(knl, bmp, t, MemMode::kDram).seconds /
                          model_cpu_like(knl, bmp, t, MemMode::kHbmFlat).seconds;
  EXPECT_GT(mps_gain, bmp_gain);
  EXPECT_GT(mps_gain, 1.2);

  // Cache mode: competitive but slightly slower than flat.
  const double flat = model_cpu_like(knl, mps, t, MemMode::kHbmFlat).seconds;
  const double cache = model_cpu_like(knl, mps, t, MemMode::kHbmCache).seconds;
  EXPECT_GE(cache, flat);
  EXPECT_LT(cache / flat, 1.5);
}

TEST(Model, RangeFilterHelpsBmpOnFriendster) {
  // Paper Fig 6: RF ~1.9-2.1x on FR (uniform degrees, big bitmap),
  // ~neutral on TW.
  const auto& knl = knl_7210_spec();
  const auto fr_plain = profile_of(fr_replica(), opts(Algorithm::kBmp));
  const auto fr_rf =
      profile_of(fr_replica(), opts(Algorithm::kBmp, {}, true));
  const double gain =
      model_cpu_like(knl, fr_plain, 256).seconds /
      model_cpu_like(knl, fr_rf, 256).seconds;
  EXPECT_GT(gain, 1.2);
}

TEST(Model, BreakdownIsConsistent) {
  const auto p = profile_of(tw_replica(), opts(Algorithm::kBmp));
  const auto r = model_cpu_like(xeon_e5_2680_spec(), p, 8);
  EXPECT_DOUBLE_EQ(r.seconds, std::max(r.compute_seconds, r.bandwidth_seconds));
  EXPECT_GT(r.cycles_bitmap, 0.0);
  EXPECT_EQ(r.cycles_vector, 0.0);  // BMP has no VB steps
  EXPECT_GT(r.effective_parallelism, 1.0);
}

TEST(Specs, PaperTestbedConstants) {
  EXPECT_EQ(xeon_e5_2680_spec().cores, 28);
  EXPECT_EQ(xeon_e5_2680_spec().vector_lanes, 8);
  EXPECT_EQ(knl_7210_spec().cores, 64);
  EXPECT_EQ(knl_7210_spec().vector_lanes, 16);
  EXPECT_GT(knl_7210_spec().hbm_bw_gbs, knl_7210_spec().dram_bw_gbs);
  EXPECT_EQ(titan_xp_spec().num_sms, 30);
  EXPECT_EQ(titan_xp_spec().max_threads_per_sm, 2048);
  EXPECT_EQ(processor_name(Processor::kKnl), "KNL");
  EXPECT_EQ(mem_mode_name(MemMode::kHbmFlat), "MCDRAM-flat");
}

}  // namespace
}  // namespace aecnc::perf
