// Tests for the live-update pipeline (src/update/): mutation-log
// admission control, the delta-vs-recount policy, the differential
// update-stream harness (published snapshot counts cross-checked bit for
// bit against a from-scratch sequential recount at every publish), and
// the Service apply_updates/publish wiring — including concurrent
// readers during a mutating publish (the TSan CI job runs this binary).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/api.hpp"
#include "core/sequential.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "intersect/merge.hpp"
#include "serve/service.hpp"
#include "serve/snapshot_store.hpp"
#include "test_seed.hpp"
#include "update/pipeline.hpp"
#include "update/replay.hpp"
#include "util/prng.hpp"

namespace aecnc {
namespace {

using testsupport::mix_seed;
using update::kAddEdge;
using update::kDelEdge;
using update::Mutation;

graph::Csr test_graph(std::uint64_t seed, VertexId n = 300,
                      std::uint64_t m = 1500) {
  return graph::Csr::from_edge_list(graph::chung_lu_power_law(n, m, 2.2, seed));
}

/// The differential oracle: materialize the pipeline state, demand a
/// validate()-clean CSR, recount it from scratch with the sequential MPS
/// driver, and require every maintained per-edge count to match bit for
/// bit (plus the triangle total).
void expect_matches_recount(const update::UpdatePipeline& pipe) {
  const graph::Csr g = pipe.materialize();
  ASSERT_EQ(g.validate(), "");
  const core::CountArray reference = core::count_sequential_mps(g, {});
  std::uint64_t checked = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (u >= nbrs[k]) continue;
      const auto c = pipe.state().count(u, nbrs[k]);
      ASSERT_TRUE(c.has_value()) << "(" << u << "," << nbrs[k] << ")";
      ASSERT_EQ(*c, reference[base + k]) << "(" << u << "," << nbrs[k] << ")";
      ++checked;
    }
  }
  EXPECT_EQ(checked, pipe.state().num_edges());
  EXPECT_EQ(pipe.state().triangles(), core::triangle_count_from(reference));
}

/// Seeded random mutation stream over a fixed universe: inserts of
/// random pairs mixed with deletes of randomly chosen *existing* edges,
/// so deletions keep firing even as the graph thins.
std::vector<Mutation> random_stream(const core::IncrementalCounter& state,
                                    util::Xoshiro256& rng, std::size_t ops,
                                    VertexId universe) {
  std::vector<Mutation> stream;
  stream.reserve(ops);
  // Track a shadow adjacency cheaply: sample delete targets from the
  // state's current neighbors (the stream is generated incrementally by
  // the caller between applies, so state is up to date).
  for (std::size_t i = 0; i < ops; ++i) {
    if (rng.below(10) < 6) {
      stream.push_back({kAddEdge, rng.below(universe), rng.below(universe)});
    } else {
      const VertexId u = rng.below(universe);
      const auto nbrs = state.neighbors(u);
      if (nbrs.empty()) {
        stream.push_back({kDelEdge, u, rng.below(universe)});
      } else {
        stream.push_back(
            {kDelEdge, u, nbrs[rng.below(static_cast<std::uint32_t>(nbrs.size()))]});
      }
    }
  }
  return stream;
}

// ---------------------------------------------------------------------------
// MutationLog

TEST(MutationLog, TryAppendShedsWhenFull) {
  update::MutationLog log(2);
  EXPECT_TRUE(log.try_append({kAddEdge, 0, 1}));
  EXPECT_TRUE(log.try_append({kAddEdge, 1, 2}));
  EXPECT_FALSE(log.try_append({kAddEdge, 2, 3}));
  const auto s = log.stats();
  EXPECT_EQ(s.depth, 2u);
  EXPECT_EQ(s.accepted, 2u);
  EXPECT_EQ(s.shed, 1u);
}

TEST(MutationLog, DrainIsFifoAndBounded) {
  update::MutationLog log(8);
  for (VertexId i = 0; i < 5; ++i) {
    ASSERT_TRUE(log.append({kAddEdge, i, static_cast<VertexId>(i + 1)}));
  }
  const auto first = log.drain(3);
  ASSERT_EQ(first.size(), 3u);
  for (VertexId i = 0; i < 3; ++i) EXPECT_EQ(first[i].u, i);
  const auto rest = log.drain(100);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].u, 3u);
  EXPECT_EQ(rest[1].u, 4u);
  EXPECT_TRUE(log.drain(1).empty());
  EXPECT_EQ(log.stats().drained, 5u);
  EXPECT_EQ(log.size(), 0u);
}

TEST(MutationLog, AppendBlocksUntilDrainedAndCloseUnblocks) {
  update::MutationLog log(1);
  ASSERT_TRUE(log.append({kAddEdge, 0, 1}));

  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    // Full log: this append must block (backpressure) until the drain.
    const bool ok = log.append({kAddEdge, 1, 2});
    second_accepted.store(ok);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_accepted.load());
  const auto batch = log.drain(1);
  ASSERT_EQ(batch.size(), 1u);
  producer.join();
  EXPECT_TRUE(second_accepted.load());
  EXPECT_GE(log.stats().backpressure_waits, 1u);

  // close() refuses new appends and unblocks would-be waiters; staged
  // mutations stay drainable.
  log.close();
  EXPECT_FALSE(log.append({kAddEdge, 2, 3}));
  EXPECT_FALSE(log.try_append({kAddEdge, 2, 3}));
  EXPECT_EQ(log.drain(10).size(), 1u);
}

// Contended append vs close vs drain: every append that returned true is
// drained exactly once, in per-producer admission order, and every
// producer blocked at close() time gets a clean false — no lost ops, no
// duplicates, no stuck producers. (The TSan CI job runs this binary, so
// the schedule interleavings are also race-checked.)
TEST(MutationLog, ConcurrentAppendVsCloseNoLostOrDuplicatedOps) {
  update::MutationLog log(16);
  constexpr int kProducers = 4;
  constexpr VertexId kOps = 500;
  // Producer p tags ops (u=p, v=sequence); blocking append means its
  // accepted set is always a prefix [0, accepted[p]).
  std::vector<std::uint32_t> accepted(kProducers, 0);
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&log, &accepted, p] {
      for (VertexId i = 0; i < kOps; ++i) {
        if (!log.append({kAddEdge, static_cast<VertexId>(p), i})) return;
        ++accepted[static_cast<std::size_t>(p)];
      }
    });
  }

  std::atomic<bool> producers_done{false};
  std::vector<Mutation> drained;
  std::thread consumer([&log, &drained, &producers_done] {
    while (true) {
      const auto batch = log.drain(7);
      if (!batch.empty()) {
        drained.insert(drained.end(), batch.begin(), batch.end());
      } else if (producers_done.load(std::memory_order_acquire)) {
        return;  // producers finished and the log is empty: all drained
      } else {
        std::this_thread::yield();
      }
    }
  });

  // Let the pipeline run under contention, then slam the door while
  // producers are (likely) mid-append.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  log.close();
  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  consumer.join();

  std::uint64_t total_accepted = 0;
  std::vector<std::uint32_t> next(kProducers, 0);
  for (const auto& m : drained) {
    ASSERT_LT(m.u, static_cast<VertexId>(kProducers));
    // Per-producer FIFO: op v must be exactly the next sequence number.
    ASSERT_EQ(m.v, next[m.u]) << "producer " << m.u;
    ++next[m.u];
  }
  for (int p = 0; p < kProducers; ++p) {
    total_accepted += accepted[static_cast<std::size_t>(p)];
    EXPECT_EQ(next[static_cast<std::size_t>(p)],
              accepted[static_cast<std::size_t>(p)])
        << "producer " << p << ": accepted ops lost or duplicated";
  }
  const auto s = log.stats();
  EXPECT_EQ(s.accepted, total_accepted);
  EXPECT_EQ(s.drained, drained.size());
  EXPECT_EQ(s.depth, 0u);
}

// Load shedding under a full log with a live draining consumer: shed ops
// vanish (accepted + shed == attempts), accepted ops all arrive in
// per-producer admission order, and nothing blocks.
TEST(MutationLog, TryAppendShedsUnderContendedDrain) {
  update::MutationLog log(4);
  constexpr int kProducers = 3;
  constexpr VertexId kAttempts = 2000;
  std::vector<std::vector<VertexId>> accepted(kProducers);
  std::atomic<bool> producers_done{false};
  std::vector<Mutation> drained;
  std::thread consumer([&log, &drained, &producers_done] {
    while (true) {
      const auto batch = log.drain(3);
      if (!batch.empty()) {
        drained.insert(drained.end(), batch.begin(), batch.end());
      } else if (producers_done.load(std::memory_order_acquire)) {
        return;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&log, &accepted, p] {
      for (VertexId i = 0; i < kAttempts; ++i) {
        if (log.try_append({kAddEdge, static_cast<VertexId>(p), i})) {
          accepted[static_cast<std::size_t>(p)].push_back(i);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  producers_done.store(true, std::memory_order_release);
  consumer.join();

  // Conservation: every attempt either got in or was shed, and every
  // accepted op came out the other side exactly once.
  std::uint64_t total_accepted = 0;
  for (const auto& seq : accepted) total_accepted += seq.size();
  const auto s = log.stats();
  EXPECT_EQ(s.accepted + s.shed,
            static_cast<std::uint64_t>(kProducers) * kAttempts);
  EXPECT_EQ(s.accepted, total_accepted);
  EXPECT_EQ(drained.size(), total_accepted);
  // Capacity 4 against 3 spinning producers and a batch-3 consumer: the
  // log saturates; shedding must actually have happened.
  EXPECT_GT(s.shed, 0u);

  // Per-producer admission order survives interleaved shedding: the
  // drained subsequence for p is exactly its accepted sequence.
  std::vector<std::size_t> cursor(kProducers, 0);
  for (const auto& m : drained) {
    ASSERT_LT(m.u, static_cast<VertexId>(kProducers));
    const auto p = static_cast<std::size_t>(m.u);
    ASSERT_LT(cursor[p], accepted[p].size());
    ASSERT_EQ(m.v, accepted[p][cursor[p]]) << "producer " << m.u;
    ++cursor[p];
  }
}

// drain() after close(): the staged remainder comes out FIFO across
// multiple bounded drains, then the log reports empty forever.
TEST(MutationLog, DrainAfterCloseDeliversRemainderFifo) {
  update::MutationLog log(32);
  for (VertexId i = 0; i < 10; ++i) {
    ASSERT_TRUE(i % 2 == 0 ? log.append({kAddEdge, i, i + 1})
                           : log.try_append({kAddEdge, i, i + 1}));
  }
  log.close();
  ASSERT_EQ(log.size(), 10u);

  std::vector<Mutation> drained;
  while (true) {
    const auto batch = log.drain(3);
    if (batch.empty()) break;
    EXPECT_LE(batch.size(), 3u);
    drained.insert(drained.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(drained.size(), 10u);
  for (VertexId i = 0; i < 10; ++i) EXPECT_EQ(drained[i].u, i);
  EXPECT_TRUE(log.drain(100).empty());
  const auto s = log.stats();
  EXPECT_EQ(s.drained, 10u);
  EXPECT_EQ(s.depth, 0u);
}

// ---------------------------------------------------------------------------
// UpdatePolicy

TEST(UpdatePolicy, SmallBatchRoutesDelta) {
  core::IncrementalCounter state(test_graph(mix_seed(11)));
  update::UpdatePolicy policy{update::PolicyConfig{}};
  const std::vector<Mutation> batch{{kAddEdge, 1, 2}, {kDelEdge, 3, 4}};
  const auto d = policy.decide(state, batch);
  EXPECT_EQ(d.mode, update::ApplyMode::kDelta);
  EXPECT_GT(d.full_cost, 0u);
}

TEST(UpdatePolicy, ExpensiveBatchRoutesRecount) {
  core::IncrementalCounter state(test_graph(mix_seed(12)));
  // recount_advantage pushed to where any nonzero delta estimate loses.
  update::UpdatePolicy policy{{.recount_advantage = 1e12,
                               .min_recount_batch = 1}};
  std::vector<Mutation> batch;
  for (VertexId i = 0; i + 1 < 40; ++i) batch.push_back({kDelEdge, i, i + 1});
  const auto d = policy.decide(state, batch);
  EXPECT_EQ(d.mode, update::ApplyMode::kFullRecount);
  EXPECT_GT(d.delta_cost, 0u);
}

TEST(UpdatePolicy, MinRecountBatchGatesSmallBatches) {
  core::IncrementalCounter state(test_graph(mix_seed(13)));
  update::UpdatePolicy policy{{.recount_advantage = 1e12,
                               .min_recount_batch = 1000}};
  const std::vector<Mutation> batch{{kAddEdge, 5, 6}};
  // Cost-wise recount would win, but one op never justifies a full pass.
  EXPECT_EQ(policy.decide(state, batch).mode, update::ApplyMode::kDelta);
}

// ---------------------------------------------------------------------------
// UpdatePipeline

TEST(UpdatePipeline, RejectsOutOfUniverseWhenPinned) {
  update::PipelineConfig cfg;
  cfg.max_vertices = 10;
  update::UpdatePipeline pipe(test_graph(mix_seed(21), 10, 20), cfg);
  const std::uint64_t edges_before = pipe.state().num_edges();
  const std::vector<Mutation> batch{
      {kAddEdge, 3, 10}, {kDelEdge, 10, 3}, {kAddEdge, 1, 2}};
  const auto report = pipe.apply(batch);
  EXPECT_EQ(report.rejected, 2u);
  EXPECT_EQ(report.inserted + report.noops, 1u);
  EXPECT_EQ(pipe.state().num_vertices(), 10u);
  EXPECT_LE(pipe.state().num_edges(), edges_before + 1);
  expect_matches_recount(pipe);
}

TEST(UpdatePipeline, ApplyPendingDrainsLogInBatches) {
  update::PipelineConfig cfg;
  cfg.max_batch = 8;
  update::UpdatePipeline pipe(cfg);
  for (VertexId i = 0; i < 50; ++i) {
    ASSERT_TRUE(pipe.try_submit({kAddEdge, i, static_cast<VertexId>(i + 1)}));
  }
  const auto report = pipe.apply_pending();
  EXPECT_EQ(report.inserted, 50u);
  EXPECT_EQ(report.batches, 7u);  // ceil(50 / 8)
  EXPECT_EQ(pipe.log().size(), 0u);
  EXPECT_EQ(pipe.state().num_edges(), 50u);
  expect_matches_recount(pipe);
}

// The standing differential harness (the PR's acceptance bar): a seeded
// 10k-op random insert/delete stream, published every 500 ops; at every
// publish the snapshot must be structurally clean and the maintained
// counts bit-identical to a from-scratch sequential MPS recount.
// AECNC_TEST_SEED perturbs the stream; the default runs the baked seed.
TEST(UpdateStream, DifferentialTenThousandOps) {
  util::Xoshiro256 rng(mix_seed(1001));
  constexpr VertexId kUniverse = 300;
  constexpr std::size_t kOps = 10000;
  constexpr std::size_t kPublishEvery = 500;

  update::PipelineConfig cfg;
  cfg.max_batch = 128;
  cfg.max_vertices = kUniverse;
  update::UpdatePipeline pipe(test_graph(mix_seed(1002), kUniverse, 1500),
                              cfg);
  serve::SnapshotStore store(pipe.materialize());

  std::size_t applied_ops = 0;
  while (applied_ops < kOps) {
    const auto stream =
        random_stream(pipe.state(), rng, kPublishEvery, kUniverse);
    applied_ops += stream.size();
    for (const Mutation& m : stream) {
      if (!pipe.try_submit(m)) {
        (void)pipe.apply_pending();
        ASSERT_TRUE(pipe.try_submit(m));
      }
    }
    (void)pipe.apply_pending();
    const serve::Epoch epoch = store.publish(pipe.materialize());
    ASSERT_GE(epoch, 2u);
    {
      SCOPED_TRACE("epoch " + std::to_string(epoch) + " after " +
                   std::to_string(applied_ops) + " ops");
      expect_matches_recount(pipe);
    }
  }
  const auto totals = pipe.totals();
  EXPECT_EQ(totals.inserted + totals.erased + totals.noops, kOps);
  EXPECT_EQ(totals.rejected, 0u);
  EXPECT_GT(totals.delta_batches, 0u);
}

// Both policy routes must produce bit-identical state: replay one
// seeded stream through a forced-delta pipeline and a forced-recount
// pipeline and compare every maintained count.
TEST(UpdateStream, DeltaAndRecountRoutesBitIdentical) {
  const graph::Csr base = test_graph(mix_seed(1011), 200, 900);
  update::PipelineConfig delta_cfg;
  delta_cfg.policy.min_recount_batch = 1u << 30;  // never recount
  update::PipelineConfig recount_cfg;
  recount_cfg.policy.min_recount_batch = 1;  // recount whenever it wins
  recount_cfg.policy.recount_advantage = 1e12;
  recount_cfg.recount_options.parallel = false;

  update::UpdatePipeline a(base, delta_cfg);
  update::UpdatePipeline b(base, recount_cfg);
  util::Xoshiro256 rng(mix_seed(1012));
  for (int round = 0; round < 8; ++round) {
    const auto stream = random_stream(a.state(), rng, 200, 200);
    const auto ra = a.apply(stream);
    const auto rb = b.apply(stream);
    EXPECT_EQ(ra.inserted, rb.inserted);
    EXPECT_EQ(ra.erased, rb.erased);
    ASSERT_EQ(a.state().num_edges(), b.state().num_edges());
    for (VertexId u = 0; u < a.state().num_vertices(); ++u) {
      for (const VertexId v : a.state().neighbors(u)) {
        if (u >= v) continue;
        ASSERT_EQ(a.state().count(u, v), b.state().count(u, v))
            << "round " << round << " edge (" << u << "," << v << ")";
      }
    }
    ASSERT_EQ(a.state().triangles(), b.state().triangles());
  }
  EXPECT_GT(a.totals().delta_batches, 0u);
  EXPECT_EQ(a.totals().recount_batches, 0u);
  EXPECT_GT(b.totals().recount_batches, 0u);
  expect_matches_recount(a);
  expect_matches_recount(b);
}

// Delete every edge, publish the empty graph, then re-insert the
// original edge set: counts must come back exactly, through real
// publishes at both extremes.
TEST(UpdateStream, DeleteToEmptyThenReinsertRestoresCounts) {
  const graph::Csr base = test_graph(mix_seed(1021), 120, 600);
  const core::CountArray original = core::count_sequential_mps(base, {});

  update::UpdatePipeline pipe(base, {});
  serve::SnapshotStore store(pipe.materialize());

  std::vector<Mutation> all_edges;
  for (VertexId u = 0; u < base.num_vertices(); ++u) {
    for (const VertexId v : base.neighbors(u)) {
      if (u < v) all_edges.push_back({kDelEdge, u, v});
    }
  }
  (void)pipe.apply(all_edges);
  EXPECT_EQ(pipe.state().num_edges(), 0u);
  EXPECT_EQ(pipe.state().triangles(), 0u);
  graph::Csr empty = pipe.materialize();
  EXPECT_EQ(empty.validate(), "");
  EXPECT_EQ(empty.num_undirected_edges(), 0u);
  EXPECT_EQ(empty.num_vertices(), base.num_vertices());
  EXPECT_EQ(store.publish(std::move(empty)), 2u);

  for (Mutation& m : all_edges) m.kind = core::EdgeOpKind::kInsert;
  const auto report = pipe.apply(all_edges);
  EXPECT_EQ(report.inserted, all_edges.size());
  const graph::Csr restored = pipe.materialize();
  ASSERT_EQ(restored.num_undirected_edges(), base.num_undirected_edges());
  // The restored CSR is the same graph, so slot layouts agree and the
  // original count array must match position for position.
  ASSERT_EQ(core::count_sequential_mps(restored, {}), original);
  expect_matches_recount(pipe);
  EXPECT_EQ(store.publish(pipe.materialize()), 3u);
}

// ---------------------------------------------------------------------------
// Service wiring

TEST(ServiceUpdates, ApplyPublishAdvancesEpochAndInvalidatesCache) {
  serve::ServiceConfig cfg;
  cfg.engine.num_workers = 1;
  serve::Service svc(cfg);
  svc.publish(test_graph(mix_seed(31), 100, 400));

  // Find an existing edge to query.
  const serve::SnapshotPtr snap = svc.snapshot();
  VertexId eu = 0;
  VertexId ev = 0;
  for (VertexId u = 0; u < snap->graph.num_vertices() && ev == 0; ++u) {
    const auto nbrs = snap->graph.neighbors(u);
    if (!nbrs.empty()) {
      eu = u;
      ev = nbrs.front();
    }
  }
  ASSERT_NE(eu, ev);

  const auto before = svc.query_edge(eu, ev);
  EXPECT_EQ(before.epoch, 1u);
  EXPECT_TRUE(svc.query_edge(eu, ev).cached);

  // Stage a mutation: visible via pending_count, not via queries.
  const std::vector<Mutation> muts{{kDelEdge, eu, ev}};
  const auto report = svc.apply_updates(muts);
  EXPECT_EQ(report.erased, 1u);
  EXPECT_FALSE(svc.pending_count(eu, ev).has_value());
  EXPECT_TRUE(svc.query_edge(eu, ev).is_edge);  // old epoch still serves

  const serve::Epoch epoch = svc.publish();
  EXPECT_EQ(epoch, 2u);
  const auto after = svc.query_edge(eu, ev);
  EXPECT_EQ(after.epoch, 2u);
  EXPECT_FALSE(after.cached);  // publish invalidated the cache
  EXPECT_FALSE(after.is_edge);
  EXPECT_EQ(svc.stats().updates.erased, 1u);

  // The pipeline survives its own publish: further updates build on the
  // epoch it just produced.
  const std::vector<Mutation> readd{{kAddEdge, eu, ev}};
  EXPECT_EQ(svc.apply_updates(readd).inserted, 1u);
  EXPECT_EQ(svc.publish(), 3u);
  EXPECT_TRUE(svc.query_edge(eu, ev).is_edge);
  EXPECT_EQ(svc.query_edge(eu, ev).count, before.count);
}

TEST(ServiceUpdates, PublishBeforeApplyThrows) {
  serve::Service svc;
  EXPECT_THROW((void)svc.publish(), std::runtime_error);
  const std::vector<Mutation> muts{{kAddEdge, 0, 1}};
  // No snapshot yet: the pipeline has nothing to seed from.
  EXPECT_THROW((void)svc.apply_updates(muts), std::runtime_error);
  svc.publish(test_graph(mix_seed(41), 50, 120));
  // (0, 1) may or may not exist in the seeded graph; either way exactly
  // one op reaches the state (insert or idempotent noop).
  const auto report = svc.apply_updates(muts);
  EXPECT_EQ(report.inserted + report.noops, 1u);
  EXPECT_EQ(svc.publish(), 2u);
}

TEST(ServiceUpdates, DirectPublishSupersedesPipelineState) {
  serve::Service svc;
  svc.publish(test_graph(mix_seed(51), 80, 300));
  const std::vector<Mutation> muts{{kAddEdge, 0, 1}};
  (void)svc.apply_updates(muts);
  // A direct CSR publish moves the store past the pipeline's epoch; the
  // next apply must re-seed from the *new* snapshot, dropping the stale
  // pipeline state.
  const graph::Csr replacement = test_graph(mix_seed(52), 80, 300);
  svc.publish(graph::Csr(replacement));
  (void)svc.apply_updates({});
  const serve::Epoch epoch = svc.publish();
  EXPECT_EQ(epoch, 3u);
  const serve::SnapshotPtr snap = svc.snapshot();
  EXPECT_EQ(snap->graph.num_undirected_edges(),
            replacement.num_undirected_edges());
}

// Readers hammering query_batch while the writer applies mutations and
// publishes: every reply must be internally consistent with exactly one
// published epoch — old or new, never torn. TSan runs this binary.
TEST(ServiceUpdates, ConcurrentReadersDuringMutatingPublish) {
  constexpr VertexId kUniverse = 250;
  const graph::Csr base = test_graph(mix_seed(61), kUniverse, 1500);

  // Deterministic mutation batches; replaying them through a standalone
  // pipeline precomputes the exact graph of every epoch the service will
  // publish.
  util::Xoshiro256 rng(mix_seed(62));
  std::vector<std::vector<Mutation>> batches;
  std::vector<graph::Csr> graphs;
  graphs.push_back(graph::Csr(base));
  {
    update::UpdatePipeline preview(base, {});
    for (int i = 0; i < 3; ++i) {
      batches.push_back(random_stream(preview.state(), rng, 300, kUniverse));
      (void)preview.apply(batches.back());
      graphs.push_back(preview.materialize());
    }
  }

  serve::ServiceConfig cfg;
  cfg.engine.num_workers = 2;
  cfg.cache_capacity = 256;
  serve::Service svc(cfg);
  svc.publish(graph::Csr(base));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> validated{0};
  const auto check_reply = [&](const serve::QueryResult& r) {
    ASSERT_GE(r.epoch, 1u);
    ASSERT_LE(r.epoch, graphs.size());
    const graph::Csr& g = graphs[r.epoch - 1];
    const CnCount expected =
        (r.u < g.num_vertices() && r.v < g.num_vertices() && r.u != r.v)
            ? intersect::merge_count(g.neighbors(r.u), g.neighbors(r.v))
            : 0;
    ASSERT_EQ(r.count, expected)
        << "epoch=" << r.epoch << " u=" << r.u << " v=" << r.v;
    validated.fetch_add(1, std::memory_order_relaxed);
  };

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      std::uint64_t x = 99991u + static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const auto u = static_cast<VertexId>(x % kUniverse);
        const auto v = static_cast<VertexId>((x >> 8) % kUniverse);
        if (t == 0) {
          check_reply(svc.query_edge(u, v));
        } else {
          const std::vector<serve::EdgeQuery> batch{{u, v}, {v, u}, {u, u}};
          for (const auto& r : svc.query_batch(batch)) check_reply(r);
        }
      }
    });
  }

  for (const auto& b : batches) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    (void)svc.apply_updates(b);
    (void)svc.publish();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  for (auto& r : readers) r.join();

  EXPECT_GT(validated.load(), 0u);
  EXPECT_EQ(svc.current_epoch(), graphs.size());
}

// ---------------------------------------------------------------------------
// Replay on a relabeled pipeline (ReplayOptions::id_map)

TEST(Replay, RelabeledReplayByteIdenticalToPlain) {
  // The same external-ID mutation stream — adds, duplicate adds, deletes,
  // re-inserts, out-of-universe rejections, verified publishes, trailing
  // unpublished mutations — must produce byte-identical replay output
  // whether the pipeline runs in the original space or the degree-ordered
  // internal space behind an IdMap.
  const graph::Csr g = test_graph(mix_seed(1031), 200, 1000);

  // Deterministically pick one existing edge and one non-edge.
  VertexId eu = 0;
  VertexId ev = 0;
  for (VertexId u = 0; u < g.num_vertices() && ev == 0; ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) {
        eu = u;
        ev = v;
        break;
      }
    }
  }
  ASSERT_LT(eu, ev);
  VertexId nv = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    if (!g.has_edge(0, v)) {
      nv = v;
      break;
    }
  }
  ASSERT_GT(nv, 0u);

  std::string script;
  {
    std::ostringstream s;
    s << "# external-id mutation stream\n";
    s << "add 0 " << nv << "\n";
    s << "add 0 " << nv << "\n";  // duplicate: noop
    s << "del " << eu << ' ' << ev << "\n";
    s << "publish\n";
    s << "add " << eu << ' ' << ev << "\n";  // re-insert
    s << "remove 0 " << nv << "\n";
    s << "add " << g.num_vertices() << " 5\n";  // out of universe: rejected
    s << "publish\n";
    s << "del 7 999999\n";  // rejected, trailing (never published)
    script = s.str();
  }

  const auto run = [&](bool relabel) {
    update::PipelineConfig cfg;
    cfg.max_vertices = g.num_vertices();
    graph::IdMap map;
    const graph::Csr seeded =
        relabel ? graph::reorder_degree_descending(g, &map) : g;
    update::UpdatePipeline pipe(seeded, cfg);
    serve::SnapshotStore store;
    store.publish(graph::Csr(seeded), map);
    std::istringstream in(script);
    std::ostringstream out;
    const update::ReplayOptions opts{
        .verify = true,
        .id_map = relabel ? &map : nullptr,
    };
    EXPECT_TRUE(update::run_replay(pipe, store, in, out, opts));
    // The relabeled run's published snapshots carry the map forward
    // (mutations may disturb strict degree order; the map must not drop).
    if (relabel) {
      const auto snap = store.acquire();
      EXPECT_NE(snap, nullptr);
      if (snap != nullptr) EXPECT_FALSE(snap->id_map.is_identity());
    }
    return out.str();
  };

  const std::string plain = run(false);
  const std::string relabeled = run(true);
  EXPECT_EQ(plain, relabeled);
  EXPECT_NE(plain.find("verify=ok"), std::string::npos);
  EXPECT_NE(plain.find("rejected=2"), std::string::npos);
}

}  // namespace
}  // namespace aecnc
