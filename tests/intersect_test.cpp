// Tests for the set-intersection kernels: every kernel must agree with
// std::set_intersection on exhaustive small cases and randomized sweeps
// spanning sizes, densities, and skews (the property the whole library
// rests on).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/csr.hpp"
#include "graph/generators.hpp"
#include "intersect/block_merge.hpp"
#include "intersect/counters.hpp"
#include "intersect/dispatch.hpp"
#include "intersect/lower_bound.hpp"
#include "intersect/merge.hpp"
#include "intersect/packed_index.hpp"
#include "intersect/pivot_skip.hpp"
#include "util/prng.hpp"

namespace aecnc::intersect {
namespace {

using Set = std::vector<VertexId>;

Set random_sorted_set(std::size_t size, VertexId universe,
                      util::Xoshiro256& rng) {
  std::set<VertexId> s;
  while (s.size() < size) s.insert(rng.below(universe));
  return Set(s.begin(), s.end());
}

/// All intersection kernels under test, as (name, fn) pairs.
using KernelFn = CnCount (*)(std::span<const VertexId>,
                             std::span<const VertexId>);

CnCount kernel_merge(std::span<const VertexId> a, std::span<const VertexId> b) {
  return merge_count(a, b);
}
CnCount kernel_branchless(std::span<const VertexId> a,
                          std::span<const VertexId> b) {
  return merge_count_branchless(a, b);
}
CnCount kernel_block8(std::span<const VertexId> a,
                      std::span<const VertexId> b) {
  return block_merge_count8(a, b);
}
CnCount kernel_block16(std::span<const VertexId> a,
                       std::span<const VertexId> b) {
  NullCounter null;
  return block_merge_count<16>(a, b, null);
}
CnCount kernel_ps(std::span<const VertexId> a, std::span<const VertexId> b) {
  return pivot_skip_count(a, b);
}
CnCount kernel_mps_default(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  return mps_count(a, b, MpsConfig{});
}
CnCount kernel_vb_sse(std::span<const VertexId> a,
                      std::span<const VertexId> b) {
  return vb_count_sse(a, b);
}

// Prefetch-off variants: hints must never change results, and the ASan /
// UBSan jobs must exercise both sides of every `if (prefetch)` branch.
CnCount kernel_block8_nopf(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  return block_merge_count8(a, b, /*prefetch=*/false);
}
CnCount kernel_ps_nopf(std::span<const VertexId> a,
                       std::span<const VertexId> b) {
  return pivot_skip_count(a, b, /*prefetch=*/false);
}
CnCount kernel_vb_sse_nopf(std::span<const VertexId> a,
                           std::span<const VertexId> b) {
  return vb_count_sse(a, b, /*prefetch=*/false);
}
#if AECNC_HAVE_SIMD_KERNELS
CnCount kernel_vb_avx2(std::span<const VertexId> a,
                       std::span<const VertexId> b) {
  return vb_count_avx2(a, b);
}
CnCount kernel_vb_avx2_nopf(std::span<const VertexId> a,
                            std::span<const VertexId> b) {
  return vb_count_avx2(a, b, /*prefetch=*/false);
}
CnCount kernel_vb_avx512(std::span<const VertexId> a,
                         std::span<const VertexId> b) {
  return vb_count_avx512(a, b);
}
CnCount kernel_vb_avx512_nopf(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  return vb_count_avx512(a, b, /*prefetch=*/false);
}
CnCount kernel_ps_avx2(std::span<const VertexId> a,
                       std::span<const VertexId> b) {
  return pivot_skip_count_avx2(a, b);
}
CnCount kernel_ps_avx2_nopf(std::span<const VertexId> a,
                            std::span<const VertexId> b) {
  return pivot_skip_count_avx2(a, b, /*prefetch=*/false);
}
#endif

struct NamedKernel {
  const char* name;
  KernelFn fn;
  bool requires_avx2 = false;
  bool requires_avx512 = false;
};

std::vector<NamedKernel> all_kernels() {
  std::vector<NamedKernel> kernels = {
      {"merge", kernel_merge},        {"branchless", kernel_branchless},
      {"block8", kernel_block8},      {"block16", kernel_block16},
      {"pivot_skip", kernel_ps},      {"mps", kernel_mps_default},
      {"vb_sse", kernel_vb_sse},      {"block8_nopf", kernel_block8_nopf},
      {"pivot_skip_nopf", kernel_ps_nopf},
      {"vb_sse_nopf", kernel_vb_sse_nopf},
  };
#if AECNC_HAVE_SIMD_KERNELS
  kernels.push_back({"vb_avx2", kernel_vb_avx2, true, false});
  kernels.push_back({"vb_avx2_nopf", kernel_vb_avx2_nopf, true, false});
  kernels.push_back({"vb_avx512", kernel_vb_avx512, false, true});
  kernels.push_back({"vb_avx512_nopf", kernel_vb_avx512_nopf, false, true});
  kernels.push_back({"ps_avx2", kernel_ps_avx2, true, false});
  kernels.push_back({"ps_avx2_nopf", kernel_ps_avx2_nopf, true, false});
#endif
  return kernels;
}

bool kernel_runnable(const NamedKernel& k) {
  if (k.requires_avx2 && !cpu_has_avx2()) return false;
  if (k.requires_avx512 && !cpu_has_avx512()) return false;
  return true;
}

class KernelTest : public ::testing::TestWithParam<NamedKernel> {
 protected:
  void SetUp() override {
    if (!kernel_runnable(GetParam())) {
      GTEST_SKIP() << GetParam().name << " not supported on this host";
    }
  }
};

TEST_P(KernelTest, EmptyInputs) {
  const auto fn = GetParam().fn;
  const Set a = {1, 2, 3};
  EXPECT_EQ(fn({}, {}), 0u);
  EXPECT_EQ(fn(a, {}), 0u);
  EXPECT_EQ(fn({}, a), 0u);
}

TEST_P(KernelTest, IdenticalSets) {
  const auto fn = GetParam().fn;
  util::Xoshiro256 rng(17);
  for (const std::size_t n : {1u, 7u, 8u, 9u, 16u, 33u, 100u}) {
    const Set a = random_sorted_set(n, 10000, rng);
    EXPECT_EQ(fn(a, a), n) << GetParam().name << " n=" << n;
  }
}

TEST_P(KernelTest, DisjointSets) {
  const auto fn = GetParam().fn;
  Set a, b;
  for (VertexId i = 0; i < 50; ++i) {
    a.push_back(2 * i);
    b.push_back(2 * i + 1);
  }
  EXPECT_EQ(fn(a, b), 0u);
}

TEST_P(KernelTest, SingleCommonElementAtBoundaries) {
  const auto fn = GetParam().fn;
  // Common element at the front, middle, and back of both arrays.
  const Set a = {5, 10, 20, 30, 40, 50, 60, 70, 80};
  for (const VertexId common : {5u, 40u, 80u}) {
    Set b = {common};
    for (VertexId i = 0; i < 8; ++i) b.push_back(1000 + i);
    std::sort(b.begin(), b.end());
    EXPECT_EQ(fn(a, b), 1u) << GetParam().name << " common=" << common;
  }
}

TEST_P(KernelTest, RandomizedAgainstReference) {
  const auto fn = GetParam().fn;
  util::Xoshiro256 rng(42);
  for (int round = 0; round < 200; ++round) {
    const std::size_t na = 1 + rng.below(120);
    const std::size_t nb = 1 + rng.below(120);
    const VertexId universe = 50 + rng.below(400);
    const Set a = random_sorted_set(std::min<std::size_t>(na, universe), universe, rng);
    const Set b = random_sorted_set(std::min<std::size_t>(nb, universe), universe, rng);
    EXPECT_EQ(fn(a, b), reference_count(a, b))
        << GetParam().name << " round " << round;
  }
}

TEST_P(KernelTest, SkewedSizesAgainstReference) {
  const auto fn = GetParam().fn;
  util::Xoshiro256 rng(77);
  // Heavy size skew: |a| = 3..8, |b| up to 5000, the regime PS targets.
  for (int round = 0; round < 40; ++round) {
    const Set small = random_sorted_set(3 + rng.below(6), 100000, rng);
    const Set large = random_sorted_set(1000 + rng.below(4000), 100000, rng);
    EXPECT_EQ(fn(small, large), reference_count(small, large));
    EXPECT_EQ(fn(large, small), reference_count(large, small));
  }
}

TEST_P(KernelTest, DenseOverlapAgainstReference) {
  const auto fn = GetParam().fn;
  util::Xoshiro256 rng(99);
  // Universe barely larger than the sets: nearly-full overlap.
  for (int round = 0; round < 40; ++round) {
    const Set a = random_sorted_set(200, 256, rng);
    const Set b = random_sorted_set(200, 256, rng);
    EXPECT_EQ(fn(a, b), reference_count(a, b));
  }
}

TEST_P(KernelTest, BlockBoundarySizes) {
  const auto fn = GetParam().fn;
  util::Xoshiro256 rng(1234);
  // Sizes straddling the 8/16 block widths exercise tail handling.
  for (const std::size_t na : {7u, 8u, 9u, 15u, 16u, 17u, 24u, 31u, 32u, 33u}) {
    for (const std::size_t nb : {7u, 8u, 9u, 16u, 17u, 32u, 33u}) {
      const Set a = random_sorted_set(na, 200, rng);
      const Set b = random_sorted_set(nb, 200, rng);
      EXPECT_EQ(fn(a, b), reference_count(a, b))
          << GetParam().name << " na=" << na << " nb=" << nb;
    }
  }
}

TEST_P(KernelTest, ExtremeIdValues) {
  const auto fn = GetParam().fn;
  // Vertex ids near 2^32 exercise the AVX2 signed-compare trick.
  const Set a = {0u, 1u, 0x7fffffffu, 0x80000000u, 0xfffffff0u, 0xffffffffu};
  const Set b = {1u, 2u, 0x7fffffffu, 0x80000001u, 0xffffffffu};
  EXPECT_EQ(fn(a, b), reference_count(a, b));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelTest,
                         ::testing::ValuesIn(all_kernels()),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// --- Lower-bound kernels -------------------------------------------------

TEST(LowerBound, BinaryMatchesStdLowerBound) {
  util::Xoshiro256 rng(5);
  const Set a = random_sorted_set(500, 10000, rng);
  for (int i = 0; i < 500; ++i) {
    const VertexId key = rng.below(11000);
    const std::size_t from = rng.below(500);
    const auto expected = static_cast<std::size_t>(
        std::lower_bound(a.begin() + static_cast<std::ptrdiff_t>(from),
                         a.end(), key) -
        a.begin());
    EXPECT_EQ(binary_lower_bound(a, from, key), expected);
  }
}

TEST(LowerBound, GallopMatchesStdLowerBound) {
  util::Xoshiro256 rng(6);
  const Set a = random_sorted_set(3000, 100000, rng);
  for (int i = 0; i < 1000; ++i) {
    const VertexId key = rng.below(110000);
    const std::size_t from = rng.below(3000);
    const auto expected = static_cast<std::size_t>(
        std::lower_bound(a.begin() + static_cast<std::ptrdiff_t>(from),
                         a.end(), key) -
        a.begin());
    EXPECT_EQ(gallop_lower_bound(a, from, key), expected);
  }
}

TEST(LowerBound, GallopEdgeCases) {
  const Set a = {10, 20, 30};
  EXPECT_EQ(gallop_lower_bound(a, 0, 5), 0u);
  EXPECT_EQ(gallop_lower_bound(a, 0, 10), 0u);
  EXPECT_EQ(gallop_lower_bound(a, 0, 31), 3u);
  EXPECT_EQ(gallop_lower_bound(a, 3, 10), 3u);  // from == size
  EXPECT_EQ(gallop_lower_bound({}, 0, 1), 0u);
}

#if AECNC_HAVE_SIMD_KERNELS
TEST(LowerBound, Avx2MatchesScalar) {
  if (!cpu_has_avx2()) GTEST_SKIP();
  util::Xoshiro256 rng(7);
  const Set a = random_sorted_set(3000, 1u << 31, rng);
  for (int i = 0; i < 1000; ++i) {
    const VertexId key = static_cast<VertexId>(rng());
    const std::size_t from = rng.below(3000);
    EXPECT_EQ(gallop_lower_bound_avx2(a, from, key),
              gallop_lower_bound(a, from, key));
  }
}

TEST(LowerBound, Avx2HandlesSignBoundary) {
  if (!cpu_has_avx2()) GTEST_SKIP();
  const Set a = {0x7ffffffeu, 0x7fffffffu, 0x80000000u, 0x80000001u,
                 0x90000000u, 0xa0000000u, 0xb0000000u, 0xc0000000u,
                 0xd0000000u, 0xe0000000u};
  for (const VertexId key :
       {0u, 0x7fffffffu, 0x80000000u, 0xc0000000u, 0xffffffffu}) {
    EXPECT_EQ(gallop_lower_bound_avx2(a, 0, key), gallop_lower_bound(a, 0, key))
        << "key=" << key;
  }
}
#endif

// --- Dispatch -------------------------------------------------------------

TEST(Dispatch, SkewThresholdSelectsPivotSkip) {
  // Instrumented run exposes which path was taken via the counters.
  StatsCounter skewed_stats;
  Set small = {1, 2, 3};
  Set large;
  for (VertexId i = 0; i < 1000; ++i) large.push_back(10 + i * 3);
  MpsConfig cfg;  // threshold 50
  (void)mps_count_instrumented(small, large, cfg, skewed_stats);
  EXPECT_GT(skewed_stats.linear_probes + skewed_stats.gallop_steps, 0u);
  EXPECT_EQ(skewed_stats.block_steps, 0u);

  StatsCounter balanced_stats;
  (void)mps_count_instrumented(large, large, cfg, balanced_stats);
  EXPECT_GT(balanced_stats.block_steps, 0u);
  EXPECT_EQ(balanced_stats.gallop_steps, 0u);
}

TEST(Dispatch, BestMergeKindMatchesCpuFeatures) {
  const MergeKind best = best_merge_kind();
  EXPECT_TRUE(merge_kind_supported(best));
  if (cpu_has_avx512()) {
    EXPECT_EQ(best, MergeKind::kAvx512);
  } else if (cpu_has_avx2()) {
    EXPECT_EQ(best, MergeKind::kAvx2);
  }
}

TEST(Dispatch, VbCountDispatchesAllKinds) {
  util::Xoshiro256 rng(8);
  const Set a = random_sorted_set(300, 2000, rng);
  const Set b = random_sorted_set(300, 2000, rng);
  const CnCount expected = reference_count(a, b);
  for (const MergeKind kind :
       {MergeKind::kScalar, MergeKind::kBranchless, MergeKind::kBlockScalar,
        MergeKind::kSse, MergeKind::kAvx2, MergeKind::kAvx512}) {
    if (!merge_kind_supported(kind)) continue;
    EXPECT_EQ(vb_count(a, b, kind), expected)
        << merge_kind_name(kind);
  }
}

TEST(Dispatch, KindNamesAreStable) {
  EXPECT_EQ(merge_kind_name(MergeKind::kScalar), "scalar");
  EXPECT_EQ(merge_kind_name(MergeKind::kAvx512), "avx512");
}

#if AECNC_HAVE_SIMD_KERNELS
TEST(Avx512Rotations, WBoundarySizesMatchScalarMerge) {
  // Regression for the function-local static rotation table in
  // vb_count_avx512: lengths straddling W=16 exercise zero and one full
  // block plus every tail shape, and repeated calls cover the
  // initialized-on-first-call path.
  if (!cpu_has_avx512()) GTEST_SKIP();
  util::Xoshiro256 rng(0x512);
  for (const std::size_t na : {std::size_t{15}, std::size_t{16},
                               std::size_t{17}}) {
    for (const std::size_t nb : {std::size_t{15}, std::size_t{16},
                                 std::size_t{17}, std::size_t{48}}) {
      for (int round = 0; round < 8; ++round) {
        const Set a = random_sorted_set(na, 120, rng);
        const Set b = random_sorted_set(nb, 120, rng);
        ASSERT_EQ(vb_count_avx512(a, b), merge_count(a, b))
            << "na=" << na << " nb=" << nb << " round=" << round;
      }
    }
  }
}
#endif

// --- Counter plumbing ------------------------------------------------------

TEST(Counters, StatsAccumulateAndMerge) {
  StatsCounter a, b;
  a.scalar_cmp(3);
  a.match();
  b.scalar_cmp(2);
  b.gallop_step();
  a += b;
  EXPECT_EQ(a.scalar_cmps, 5u);
  EXPECT_EQ(a.matches, 1u);
  EXPECT_EQ(a.gallop_steps, 1u);
}

TEST(Counters, MergeCountsComparisons) {
  StatsCounter stats;
  const Set a = {1, 3, 5, 7};
  const Set b = {2, 3, 6, 7};
  const CnCount c = merge_count(a, b, stats);
  EXPECT_EQ(c, 2u);
  EXPECT_EQ(stats.matches, 2u);
  EXPECT_GE(stats.scalar_cmps, 4u);
}

// --- Word-packed hub index -------------------------------------------------

graph::Csr packed_fixture_graph(std::uint64_t seed) {
  auto edges = graph::chung_lu_power_law(600, 5000, 2.1, seed);
  return graph::Csr::from_edge_list(std::move(edges));
}

TEST(PackedIndex, BuildMatchesBruteForce) {
  const graph::Csr g = packed_fixture_graph(0x9a11);
  // A threshold mid-universe forces both head and tail to be non-empty.
  constexpr VertexId kThreshold = 256;
  const auto index = PackedHubIndex::build(g, kThreshold);
  EXPECT_EQ(index.threshold(), kThreshold);
  EXPECT_EQ(index.num_blocks(), (kThreshold + 63) / 64);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    // head_size = number of sub-threshold neighbors (a sorted prefix).
    std::uint32_t head = 0;
    while (head < nbrs.size() && nbrs[head] < kThreshold) ++head;
    ASSERT_EQ(index.head_size(v), head) << "vertex " << v;
    // Expanding the packed entries recovers exactly the head set.
    std::vector<VertexId> unpacked;
    const auto blocks = index.block_ids(v);
    const auto words = index.words(v);
    ASSERT_EQ(blocks.size(), words.size());
    for (std::size_t k = 0; k < blocks.size(); ++k) {
      if (k > 0) ASSERT_LT(blocks[k - 1], blocks[k]) << "vertex " << v;
      for (unsigned bit = 0; bit < 64; ++bit) {
        if ((words[k] >> bit) & 1u) {
          unpacked.push_back(64u * blocks[k] + bit);
        }
      }
    }
    ASSERT_EQ(unpacked.size(), head) << "vertex " << v;
    for (std::uint32_t k = 0; k < head; ++k) {
      ASSERT_EQ(unpacked[k], nbrs[k]) << "vertex " << v;
    }
  }
}

TEST(PackedIndex, IntersectCountMatchesMerge) {
  const graph::Csr g = packed_fixture_graph(0x9a12);
  constexpr VertexId kThreshold = 192;  // not a multiple of 64 blocks * 64
  const auto index = PackedHubIndex::build(g, kThreshold);
  std::vector<PackedHubIndex::Word> dense(index.num_blocks(), 0);
  util::Xoshiro256 rng(0x9a13);
  for (int trial = 0; trial < 64; ++trial) {
    const auto u = static_cast<VertexId>(rng.below(g.num_vertices()));
    const auto v = static_cast<VertexId>(rng.below(g.num_vertices()));
    for (std::size_t k = 0; k < index.block_ids(u).size(); ++k) {
      dense[index.block_ids(u)[k]] = index.words(u)[k];
    }
    const CnCount via_packed =
        packed_intersect_count(dense.data(), index.block_ids(v),
                               index.words(v));
    const auto head_u = g.neighbors(u).subspan(0, index.head_size(u));
    const auto head_v = g.neighbors(v).subspan(0, index.head_size(v));
    ASSERT_EQ(via_packed, merge_count(head_u, head_v))
        << "pair (" << u << ", " << v << ")";
    for (const PackedHubIndex::BlockId block : index.block_ids(u)) {
      dense[block] = 0;
    }
  }
}

TEST(PackedCounter, CountsMatchMergeAndClearRestoresZero) {
  const graph::Csr g = packed_fixture_graph(0x9a14);
  const auto index = PackedHubIndex::build(g, 128);
  PackedCounter ctx;
  ctx.reshape(g, index);
  EXPECT_TRUE(ctx.all_zero());
  for (const VertexId u : {VertexId{0}, VertexId{3}, VertexId{599}}) {
    ctx.set_source(g, index, u);
    EXPECT_EQ(ctx.source(), u);
    for (const VertexId v : g.neighbors(u)) {
      ASSERT_EQ(ctx.count(g, index, v, /*prefetch=*/false),
                merge_count(g.neighbors(u), g.neighbors(v)))
          << "pair (" << u << ", " << v << ")";
    }
  }
  ctx.clear_source(g, index);
  EXPECT_TRUE(ctx.all_zero());
}

TEST(PackedCounter, SetSourceIsLazyAndEvicts) {
  const graph::Csr g = packed_fixture_graph(0x9a15);
  const auto index = PackedHubIndex::build(g, 64);
  PackedCounter ctx;
  ctx.reshape(g, index);
  ctx.set_source(g, index, 7);
  ctx.set_source(g, index, 7);  // no-op
  EXPECT_EQ(ctx.source(), 7u);
  ctx.set_source(g, index, 11);  // evicts 7, loads 11
  EXPECT_EQ(ctx.source(), 11u);
  for (const VertexId v : g.neighbors(11)) {
    ASSERT_EQ(ctx.count(g, index, v, /*prefetch=*/false),
              merge_count(g.neighbors(11), g.neighbors(v)));
  }
  ctx.clear_source(g, index);
  EXPECT_TRUE(ctx.all_zero());
}

TEST(PackedIndex, ThresholdCoversWholeUniverse) {
  // Every vertex below the threshold: tails are empty everywhere and the
  // packed path alone must carry full counts.
  const graph::Csr g = packed_fixture_graph(0x9a16);
  ASSERT_LE(g.num_vertices(), PackedHubIndex::kDefaultThreshold);
  const auto index = PackedHubIndex::build(g);
  PackedCounter ctx;
  ctx.reshape(g, index);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    ASSERT_EQ(index.head_size(u), g.degree(u));
  }
  ctx.set_source(g, index, 0);
  for (const VertexId v : g.neighbors(0)) {
    ASSERT_EQ(ctx.count(g, index, v, /*prefetch=*/false),
              merge_count(g.neighbors(0), g.neighbors(v)));
  }
  ctx.clear_source(g, index);
}

}  // namespace
}  // namespace aecnc::intersect
