// Parameterized sweeps: SCAN over (epsilon, mu) grids, model sensitivity
// to spec parameters, and dataset replicas across scales — the
// "does the knob move the output the right way" tests.
#include <gtest/gtest.h>

#include <tuple>

#include "core/api.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "graph/stats.hpp"
#include "perf/collect.hpp"
#include "perf/models.hpp"
#include "scan/scan.hpp"

namespace aecnc {
namespace {

using graph::Csr;

// --- SCAN (epsilon, mu) grid ----------------------------------------------------

class ScanSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint32_t>> {};

TEST_P(ScanSweep, InvariantsHoldAtEveryParameter) {
  const auto [eps, mu] = GetParam();
  static const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(1500, 12000, 2.2, 55));
  const auto result = scan::cluster(g, {.epsilon = eps, .mu = mu});

  ASSERT_EQ(result.cluster.size(), g.num_vertices());
  ASSERT_EQ(result.role.size(), g.num_vertices());

  // Cores/borders are clustered, hubs/outliers are not.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const bool clustered = result.cluster[v] != scan::Result::kUnclustered;
    const auto role = result.role[v];
    EXPECT_EQ(clustered,
              role == scan::Role::kCore || role == scan::Role::kBorder);
    if (clustered) {
      EXPECT_LT(result.cluster[v], result.num_clusters);
    }
  }

  // Every cluster id in [0, num_clusters) is used by at least one core.
  std::vector<bool> used(result.num_clusters, false);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (result.role[v] == scan::Role::kCore) used[result.cluster[v]] = true;
  }
  for (std::size_t c = 0; c < used.size(); ++c) {
    EXPECT_TRUE(used[c]) << "cluster " << c << " has no core";
  }
}

TEST_P(ScanSweep, TighterEpsilonNeverAddsCores) {
  const auto [eps, mu] = GetParam();
  static const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(1000, 8000, 2.3, 57));
  const auto counts = core::count_common_neighbors(g);
  const auto loose = scan::cluster_from_counts(g, counts, {eps, mu});
  const auto tight =
      scan::cluster_from_counts(g, counts, {std::min(1.0, eps + 0.2), mu});
  EXPECT_LE(tight.count_role(scan::Role::kCore),
            loose.count_role(scan::Role::kCore));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ScanSweep,
    ::testing::Combine(::testing::Values(0.2, 0.4, 0.6, 0.8),
                       ::testing::Values(2u, 3u, 5u)),
    [](const auto& info) {
      return "eps" +
             std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) +
             "_mu" + std::to_string(std::get<1>(info.param));
    });

// --- Model sensitivity ------------------------------------------------------------

class ModelSensitivity : public ::testing::Test {
 protected:
  static const perf::WorkProfile& mps_profile() {
    static const perf::WorkProfile p = [] {
      const Csr g = graph::reorder_degree_descending(
          graph::make_dataset(graph::DatasetId::kTwitter, 1e-4));
      core::Options o;
      o.mps.kind = intersect::MergeKind::kAvx512;
      return perf::scale_profile(perf::collect_profile(g, o).profile, 1e4);
    }();
    return p;
  }
  static const perf::WorkProfile& bmp_profile() {
    static const perf::WorkProfile p = [] {
      const Csr g = graph::reorder_degree_descending(
          graph::make_dataset(graph::DatasetId::kTwitter, 1e-4));
      core::Options o;
      o.algorithm = core::Algorithm::kBmp;
      return perf::scale_profile(perf::collect_profile(g, o).profile, 1e4);
    }();
    return p;
  }
};

TEST_F(ModelSensitivity, FasterClockNeverHurts) {
  auto spec = perf::knl_7210_spec();
  const double base = perf::model_cpu_like(spec, mps_profile(), 64).seconds;
  spec.freq_ghz *= 2.0;
  EXPECT_LE(perf::model_cpu_like(spec, mps_profile(), 64).seconds, base);
}

TEST_F(ModelSensitivity, MoreBandwidthHelpsMpsAtSaturation) {
  auto spec = perf::knl_7210_spec();
  const double base = perf::model_cpu_like(spec, mps_profile(), 256).seconds;
  spec.dram_bw_gbs *= 4.0;
  EXPECT_LT(perf::model_cpu_like(spec, mps_profile(), 256).seconds, base);
}

TEST_F(ModelSensitivity, RandomBandwidthGatesBmpNotMps) {
  auto spec = perf::knl_7210_spec();
  const double bmp_base =
      perf::model_cpu_like(spec, bmp_profile(), 256).seconds;
  const double mps_base =
      perf::model_cpu_like(spec, mps_profile(), 256).seconds;
  spec.random_bw_gbs *= 4.0;
  const double bmp_fast =
      perf::model_cpu_like(spec, bmp_profile(), 256).seconds;
  const double mps_fast =
      perf::model_cpu_like(spec, mps_profile(), 256).seconds;
  EXPECT_LT(bmp_fast, bmp_base * 0.6) << "BMP must be random-bw bound";
  EXPECT_GT(mps_fast, mps_base * 0.9) << "MPS must not care";
}

TEST_F(ModelSensitivity, WiderVectorsHelpOnlyVbWork) {
  const auto& cpu = perf::xeon_e5_2680_spec();
  auto narrow = mps_profile();
  narrow.vector_lanes = 8;
  auto wide = mps_profile();
  wide.vector_lanes = 16;
  EXPECT_LT(perf::model_cpu_like(cpu, wide, 1).seconds,
            perf::model_cpu_like(cpu, narrow, 1).seconds);

  // BMP has no block steps: lane width is irrelevant.
  auto bmp_narrow = bmp_profile();
  bmp_narrow.vector_lanes = 1;
  auto bmp_wide = bmp_profile();
  bmp_wide.vector_lanes = 16;
  EXPECT_DOUBLE_EQ(perf::model_cpu_like(cpu, bmp_narrow, 1).seconds,
                   perf::model_cpu_like(cpu, bmp_wide, 1).seconds);
}

TEST_F(ModelSensitivity, ScaleProfileIsLinear) {
  const auto half = perf::scale_profile(mps_profile(), 0.5);
  EXPECT_EQ(half.work.scalar_cmps, mps_profile().work.scalar_cmps / 2);
  EXPECT_EQ(half.work.streamed_bytes, mps_profile().work.streamed_bytes / 2);
  EXPECT_EQ(half.num_vertices, mps_profile().num_vertices / 2);
}

// --- Dataset replicas across scales -----------------------------------------------

class DatasetScaleSweep
    : public ::testing::TestWithParam<std::tuple<graph::DatasetId, double>> {};

TEST_P(DatasetScaleSweep, AvgDegreeIsScaleInvariant) {
  const auto [id, scale] = GetParam();
  const Csr g = graph::make_dataset(id, scale);
  const auto s = graph::compute_stats(g);
  const auto& paper = graph::paper_stats(id);
  EXPECT_GT(s.avg_degree, 0.55 * paper.avg_degree)
      << graph::dataset_name(id) << " at " << scale;
  EXPECT_LT(s.avg_degree, 1.45 * paper.avg_degree)
      << graph::dataset_name(id) << " at " << scale;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DatasetScaleSweep,
    ::testing::Combine(::testing::ValuesIn(graph::kAllDatasets),
                       ::testing::Values(1e-4, 5e-4)),
    [](const auto& info) {
      return std::string(graph::dataset_name(std::get<0>(info.param))) +
             "_s" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 1e5));
    });

}  // namespace
}  // namespace aecnc
