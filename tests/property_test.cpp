// Property-based tests: invariants that must hold for *every* graph and
// every algorithm configuration, checked over randomized graph sweeps
// (TEST_P over generator seeds and shapes).
//
// Invariants:
//   P1  cnt[e(u,v)] <= min(d_u, d_v)            (counts are intersections)
//   P2  cnt[e(u,v)] == cnt[e(v,u)]              (symmetry)
//   P3  Σ cnt ≡ 0 (mod 6)                       (each triangle counted 6x)
//   P4  cnt[e(u,v)] <= d_u - 1 if (u,v) ∈ E     (v itself is not common)
//   P5  all algorithm variants agree bit-for-bit
//   P6  counts are invariant under vertex relabeling
//   P7  adding an isolated vertex changes nothing
//   P8  deleting an edge never increases other edges' counts... checked
//       in the targeted EdgeDeletionMonotonicity test
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "core/api.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "test_seed.hpp"
#include "util/prng.hpp"

namespace aecnc {
namespace {

using graph::Csr;
using graph::EdgeList;
using testsupport::mix_seed;

struct GraphSpec {
  const char* kind;
  VertexId vertices;
  std::uint64_t edges;
  double exponent;  // <= 0: Erdős–Rényi
  std::uint64_t seed;
};

Csr make_graph(const GraphSpec& spec) {
  const std::uint64_t seed = mix_seed(spec.seed);
  EdgeList edges =
      spec.exponent > 0
          ? graph::chung_lu_power_law(spec.vertices, spec.edges, spec.exponent,
                                      seed)
          : graph::erdos_renyi(spec.vertices, spec.edges, seed);
  return Csr::from_edge_list(std::move(edges));
}

class PropertyTest : public ::testing::TestWithParam<GraphSpec> {};

TEST_P(PropertyTest, CountBoundsAndSymmetry) {
  const Csr g = make_graph(GetParam());
  const auto cnt = core::count_common_neighbors(g);
  ASSERT_EQ(cnt.size(), g.num_directed_edges());

  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const VertexId v = nbrs[k];
      const CnCount c = cnt[base + k];
      // P1 / P4: bounded by both degrees minus the endpoints themselves.
      ASSERT_LE(c, std::min(g.degree(u), g.degree(v)) - 1)
          << "edge (" << u << "," << v << ")";
      // P2: symmetric.
      ASSERT_EQ(c, cnt[g.find_edge(v, u)]);
    }
  }

  // P3: triangle divisibility.
  std::uint64_t sum = 0;
  for (const CnCount c : cnt) sum += c;
  EXPECT_EQ(sum % 6, 0u);
}

TEST_P(PropertyTest, AllVariantsAgree) {
  const Csr g = graph::reorder_degree_descending(make_graph(GetParam()));
  const auto reference = core::count_reference(g);

  std::vector<core::Options> variants;
  std::vector<std::string> labels;
  {
    core::Options o;
    o.algorithm = core::Algorithm::kMergeBaseline;
    variants.push_back(o);
    labels.emplace_back("merge-baseline");
    // Every VB kernel this host can execute, not just the widest one: the
    // SSE and scalar/branchless paths must agree on every CI runner, and
    // AVX2/AVX-512 wherever cpuid allows them.
    o.algorithm = core::Algorithm::kMps;
    for (const auto kind :
         {intersect::MergeKind::kScalar, intersect::MergeKind::kBranchless,
          intersect::MergeKind::kBlockScalar, intersect::MergeKind::kSse,
          intersect::MergeKind::kAvx2, intersect::MergeKind::kAvx512}) {
      if (!intersect::merge_kind_supported(kind)) continue;
      o.mps.kind = kind;
      variants.push_back(o);
      labels.emplace_back(std::string("mps/") +
                          std::string(intersect::merge_kind_name(kind)));
    }
    o.mps.kind = intersect::best_merge_kind();
    o.mps.skew_threshold = 3.0;
    variants.push_back(o);
    labels.emplace_back("mps/t=3");
    o.algorithm = core::Algorithm::kBmp;
    variants.push_back(o);
    labels.emplace_back("bmp");
    o.bmp_range_filter = true;
    o.rf_range_scale = 128;
    variants.push_back(o);
    labels.emplace_back("bmp-rf");
    o.granularity = core::TaskGranularity::kCoarseGrained;
    variants.push_back(o);
    labels.emplace_back("bmp-rf-coarse");
    o.parallel = false;
    variants.push_back(o);
    labels.emplace_back("bmp-rf-sequential");
  }
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto counts = core::count_common_neighbors(g, variants[i]);
    EXPECT_FALSE(core::diff_counts(g, counts, reference).has_value())
        << "variant " << labels[i];
  }
}

TEST_P(PropertyTest, RelabelingInvariance) {
  // P6: relabel with a random permutation; translated counts must match.
  const Csr g = make_graph(GetParam());
  util::Xoshiro256 rng(mix_seed(GetParam().seed ^ 0xabcdef));
  std::vector<VertexId> perm(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) perm[v] = v;
  for (VertexId v = g.num_vertices(); v > 1; --v) {
    std::swap(perm[v - 1], perm[rng.below(v)]);
  }
  const Csr relabeled = graph::apply_permutation(g, perm);

  const auto original = core::count_common_neighbors(g);
  const auto shuffled = core::count_common_neighbors(relabeled);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeId mapped = relabeled.find_edge(perm[u], perm[nbrs[k]]);
      ASSERT_EQ(original[base + k], shuffled[mapped]);
    }
  }
}

TEST_P(PropertyTest, IsolatedVertexIsNeutral) {
  // P7: appending an isolated vertex shifts nothing.
  const GraphSpec& spec = GetParam();
  const Csr g = make_graph(spec);
  EdgeList padded(g.num_vertices() + 1);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v) padded.add(u, v);
    }
  }
  const Csr gp = Csr::from_edge_list(std::move(padded));
  ASSERT_EQ(gp.num_vertices(), g.num_vertices() + 1);
  EXPECT_EQ(core::count_common_neighbors(g),
            core::count_common_neighbors(gp));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PropertyTest,
    ::testing::Values(GraphSpec{"er_sparse", 300, 600, -1, 1},
                      GraphSpec{"er_dense", 120, 3000, -1, 2},
                      GraphSpec{"pl_heavy", 500, 4000, 2.0, 3},
                      GraphSpec{"pl_mild", 500, 4000, 3.0, 4},
                      GraphSpec{"pl_tiny", 40, 100, 2.2, 5},
                      GraphSpec{"er_ring", 1000, 1200, -1, 6}),
    [](const auto& info) { return std::string(info.param.kind); });

TEST(PropertyEdge, ReorderInvolutionOnDegreeTieGraphs) {
  // The forward permutation and its inverse must be involution partners
  // (perm ∘ inverse == inverse ∘ perm == identity) even when stable_sort
  // has nothing but ties to break: regular graphs, unions of equal
  // cliques, and a two-level degree plateau are the adversarial shapes.
  std::vector<std::pair<const char*, Csr>> shapes;
  {
    // Cycle: every degree is 2.
    EdgeList cycle(64);
    for (VertexId v = 0; v < 64; ++v) cycle.add(v, (v + 1) % 64);
    shapes.emplace_back("cycle", Csr::from_edge_list(std::move(cycle)));
  }
  {
    // Union of 8 disjoint K_5s: all degrees 4, 8-way ties per rank.
    EdgeList cliques(40);
    for (VertexId c = 0; c < 8; ++c) {
      for (VertexId i = 0; i < 5; ++i) {
        for (VertexId j = i + 1; j < 5; ++j) {
          cliques.add(5 * c + i, 5 * c + j);
        }
      }
    }
    shapes.emplace_back("cliques", Csr::from_edge_list(std::move(cliques)));
  }
  {
    // Two-level plateau: a K_8 core (degree 7 + pendants) and 32 leaves
    // of degree 1 — exactly two distinct degrees, massive tie groups.
    EdgeList plateau(8 + 32);
    for (VertexId i = 0; i < 8; ++i) {
      for (VertexId j = i + 1; j < 8; ++j) plateau.add(i, j);
    }
    for (VertexId leaf = 0; leaf < 32; ++leaf) {
      plateau.add(leaf % 8, 8 + leaf);
    }
    shapes.emplace_back("plateau", Csr::from_edge_list(std::move(plateau)));
  }
  {
    // Edgeless: every vertex ties at degree 0.
    shapes.emplace_back("edgeless", Csr::from_edge_list(EdgeList(17)));
  }
  for (const auto& [name, g] : shapes) {
    const auto perm = graph::degree_descending_permutation(g);
    std::vector<VertexId> inverse;
    const Csr via_vec = graph::reorder_degree_descending(g, &inverse);
    graph::IdMap map;
    const Csr via_map = graph::reorder_degree_descending(g, &map);
    ASSERT_EQ(via_vec.dst(), via_map.dst()) << name;
    EXPECT_TRUE(map.validate().empty()) << name << ": " << map.validate();
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      // Stable sort: ties keep ascending original order, so the rank of
      // v is the number of vertices that outrank it.
      ASSERT_EQ(inverse[perm[v]], v) << name;
      ASSERT_EQ(perm[inverse[v]], v) << name;
      ASSERT_EQ(map.to_internal(v), perm[v]) << name;
      ASSERT_EQ(map.to_external(perm[v]), v) << name;
      if (v > 0 && g.degree(v) == g.degree(v - 1)) {
        // Tie-break determinism: equal degrees keep their relative order.
        EXPECT_LT(perm[v - 1], perm[v]) << name;
      }
    }
    // Counts survive the relabel bit for bit once translated back.
    const auto original = core::count_common_neighbors(g);
    const auto relabeled = core::count_common_neighbors(via_map);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      const EdgeId base = g.offset_begin(u);
      const auto nbrs = g.neighbors(u);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        const EdgeId mapped =
            via_map.find_edge(map.to_internal(u), map.to_internal(nbrs[k]));
        ASSERT_EQ(original[base + k], relabeled[mapped]) << name;
      }
    }
  }
}

TEST(PropertyEdge, EdgeDeletionMonotonicity) {
  // P8: removing one edge (a,b) can only lower counts of other edges
  // (it removes common-neighbor witnesses), never raise them.
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(150, 1200, 77));
  const auto before = core::count_common_neighbors(g);

  // Delete the first edge of vertex 0.
  ASSERT_GT(g.degree(0), 0u);
  const VertexId a = 0;
  const VertexId b = g.neighbors(0)[0];
  EdgeList remaining(g.num_vertices());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (u < v && !(u == std::min(a, b) && v == std::max(a, b))) {
        remaining.add(u, v);
      }
    }
  }
  const Csr h = Csr::from_edge_list(std::move(remaining));
  const auto after = core::count_common_neighbors(h);

  for (VertexId u = 0; u < h.num_vertices(); ++u) {
    const EdgeId base = h.offset_begin(u);
    const auto nbrs = h.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      const EdgeId old_slot = g.find_edge(u, nbrs[k]);
      ASSERT_LT(old_slot, g.num_directed_edges());
      EXPECT_LE(after[base + k], before[old_slot])
          << "edge (" << u << "," << nbrs[k] << ")";
    }
  }
}

TEST(PropertyEdge, CliqueCountsAreExact) {
  // In K_n every edge has exactly n-2 common neighbors.
  for (const VertexId n : {3u, 5u, 9u, 17u, 33u}) {
    const Csr g = Csr::from_edge_list(graph::clique(n));
    const auto cnt = core::count_common_neighbors(g);
    for (const CnCount c : cnt) EXPECT_EQ(c, n - 2) << "K" << n;
  }
}

TEST(PropertyEdge, BipartiteHasNoCommonNeighborsAcrossSides) {
  // Complete bipartite K_{a,b}: an edge (u,v) spans the sides; its
  // common neighbors are empty (u's neighbors are all on v's side and
  // vice versa — and the sides are independent sets).
  constexpr VertexId kA = 8, kB = 12;
  EdgeList edges(kA + kB);
  for (VertexId i = 0; i < kA; ++i) {
    for (VertexId j = 0; j < kB; ++j) edges.add(i, kA + j);
  }
  const Csr g = Csr::from_edge_list(std::move(edges));
  const auto cnt = core::count_common_neighbors(g);
  for (const CnCount c : cnt) EXPECT_EQ(c, 0u);
}

TEST(PropertyEdge, TwoTrianglesSharingAnEdge) {
  // Diamond: 0-1 shared by triangles {0,1,2} and {0,1,3}.
  EdgeList edges(4);
  edges.add(0, 1);
  edges.add(0, 2);
  edges.add(1, 2);
  edges.add(0, 3);
  edges.add(1, 3);
  const Csr g = Csr::from_edge_list(std::move(edges));
  const auto cnt = core::count_common_neighbors(g);
  EXPECT_EQ(cnt[g.find_edge(0, 1)], 2u);  // both 2 and 3
  EXPECT_EQ(cnt[g.find_edge(0, 2)], 1u);
  EXPECT_EQ(cnt[g.find_edge(2, 1)], 1u);
  EXPECT_EQ(core::triangle_count_from(cnt), 2u);
}

}  // namespace
}  // namespace aecnc
