// Kernel-level tests for the GPU simulator: transaction accounting,
// range restriction, skew partitioning between MKernel and PSKernel,
// shared-memory accounting for the range filter, and the co-processing
// data flow of Algorithm 4.
#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "gpusim/kernels.hpp"
#include "gpusim/runner.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"

namespace aecnc::gpusim {
namespace {

using core::Algorithm;
using graph::Csr;

Csr small_skewed_graph() {
  auto edges = graph::erdos_renyi(300, 1500, 7);
  graph::add_hubs(edges, 1, 250, 8);
  return graph::reorder_degree_descending(Csr::from_edge_list(std::move(edges)));
}

struct KernelHarness {
  explicit KernelHarness(const Csr& graph)
      : g(graph),
        um(1ull << 30),
        arrays(allocate_graph(um, g)),
        cnt(g.num_directed_edges(), 0) {}

  const Csr& g;
  UnifiedMemory um;
  DeviceArrays arrays;
  std::vector<CnCount> cnt;
  KernelStats stats;
};

TEST(Kernels, MPlusPsCoverExactlyForwardEdges) {
  // t = 10 so the 250-degree hub's edges (ratio ~25 over the ER body)
  // route to the PS kernel.
  const Csr g = small_skewed_graph();
  KernelHarness h(g);
  run_m_kernel(g, h.cnt, 10.0, 0, g.num_vertices(), h.arrays, h.um, h.stats);
  const auto m_edges = h.stats.edges_processed;
  run_ps_kernel(g, h.cnt, 10.0, 0, g.num_vertices(), h.arrays, h.um, h.stats);
  const auto total = h.stats.edges_processed;
  EXPECT_GT(m_edges, 0u);
  EXPECT_GT(total, m_edges) << "a hubby graph must route edges to PSKernel";
  EXPECT_EQ(total, g.num_undirected_edges());
}

TEST(Kernels, ForwardCountsMatchReferenceAfterBothKernels) {
  const Csr g = small_skewed_graph();
  KernelHarness h(g);
  run_m_kernel(g, h.cnt, 10.0, 0, g.num_vertices(), h.arrays, h.um, h.stats);
  run_ps_kernel(g, h.cnt, 10.0, 0, g.num_vertices(), h.arrays, h.um, h.stats);
  const auto expected = core::count_reference(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    const EdgeId base = g.offset_begin(u);
    const auto nbrs = g.neighbors(u);
    for (std::size_t k = 0; k < nbrs.size(); ++k) {
      if (u < nbrs[k]) {
        ASSERT_EQ(h.cnt[base + k], expected[base + k])
            << "edge (" << u << "," << nbrs[k] << ")";
      } else {
        ASSERT_EQ(h.cnt[base + k], 0u) << "reverse slots must stay untouched";
      }
    }
  }
}

TEST(Kernels, RangeRestrictionPartitionsWork) {
  const Csr g = small_skewed_graph();
  const VertexId mid = g.num_vertices() / 2;

  KernelHarness lo(g), hi(g), full(g);
  run_m_kernel(g, lo.cnt, 50.0, 0, mid, lo.arrays, lo.um, lo.stats);
  run_m_kernel(g, hi.cnt, 50.0, mid, g.num_vertices(), hi.arrays, hi.um,
               hi.stats);
  run_m_kernel(g, full.cnt, 50.0, 0, g.num_vertices(), full.arrays, full.um,
               full.stats);

  EXPECT_EQ(lo.stats.edges_processed + hi.stats.edges_processed,
            full.stats.edges_processed);
  // Slot-wise union of the two ranges equals the full run.
  for (EdgeId e = 0; e < g.num_directed_edges(); ++e) {
    EXPECT_EQ(lo.cnt[e] + hi.cnt[e], full.cnt[e]) << "slot " << e;
  }
}

TEST(Kernels, BmpSharedMemoryOnlyWithRangeFilter) {
  const Csr g = small_skewed_graph();
  const auto occ = compute_occupancy(perf::titan_xp_spec(), {4});

  KernelHarness plain(g);
  BitmapPool pool_plain(perf::titan_xp_spec().num_sms, occ.blocks_per_sm,
                        g.num_vertices());
  run_bmp_kernel(g, plain.cnt, false, 4096, 0, g.num_vertices(), plain.arrays,
                 plain.um, pool_plain, occ, plain.stats);
  EXPECT_EQ(plain.stats.shared_load_ops, 0u);
  EXPECT_GT(plain.stats.atomic_ops, 0u);  // atomicOr bitmap construction

  KernelHarness rf(g);
  BitmapPool pool_rf(perf::titan_xp_spec().num_sms, occ.blocks_per_sm,
                     g.num_vertices());
  run_bmp_kernel(g, rf.cnt, true, 64, 0, g.num_vertices(), rf.arrays, rf.um,
                 pool_rf, occ, rf.stats);
  EXPECT_GT(rf.stats.shared_load_ops, 0u);
  EXPECT_LE(rf.stats.load_transactions, plain.stats.load_transactions);
  EXPECT_EQ(rf.cnt, plain.cnt);
}

TEST(Kernels, TransactionsScaleWithWork) {
  // A denser graph must generate more load transactions under MKernel.
  const Csr sparse = Csr::from_edge_list(graph::erdos_renyi(300, 900, 9));
  const Csr dense = Csr::from_edge_list(graph::erdos_renyi(300, 9000, 9));
  KernelHarness hs(sparse), hd(dense);
  run_m_kernel(sparse, hs.cnt, 50.0, 0, sparse.num_vertices(), hs.arrays,
               hs.um, hs.stats);
  run_m_kernel(dense, hd.cnt, 50.0, 0, dense.num_vertices(), hd.arrays, hd.um,
               hd.stats);
  EXPECT_GT(hd.stats.load_transactions, 5 * hs.stats.load_transactions);
  EXPECT_GT(hd.stats.shuffle_ops, hs.stats.shuffle_ops);
}

TEST(Kernels, PsKernelCountsSerialGathers) {
  const Csr g = small_skewed_graph();
  KernelHarness h(g);
  run_ps_kernel(g, h.cnt, 10.0, 0, g.num_vertices(), h.arrays, h.um, h.stats);
  EXPECT_GT(h.stats.serial_steps, 0u);
  EXPECT_EQ(h.stats.shuffle_ops, 0u);  // thread-per-edge: no reductions
}

TEST(Kernels, AllocateGraphLaysOutThreeRegions) {
  const Csr g = Csr::from_edge_list(graph::clique(8));
  UnifiedMemory um(1 << 20);
  const auto arrays = allocate_graph(um, g);
  EXPECT_LT(arrays.off_base, arrays.dst_base);
  EXPECT_LT(arrays.dst_base, arrays.cnt_base);
  EXPECT_GE(um.allocated_bytes(),
            g.memory_bytes() + g.num_directed_edges() * sizeof(CnCount));
}

TEST(Runner, ModelKernelSecondsRespondsToOccupancy) {
  KernelStats stats;
  stats.load_transactions = 1'000'000;
  const auto& spec = perf::titan_xp_spec();
  const double full =
      model_kernel_seconds(spec, compute_occupancy(spec, {4}), stats);
  const double quarter =
      model_kernel_seconds(spec, compute_occupancy(spec, {1}), stats);
  EXPECT_GT(quarter, full);  // low occupancy cannot hide latency
}

TEST(Runner, SerialStepsDominateAtScale) {
  KernelStats gathered;
  gathered.serial_steps = 10'000'000;
  KernelStats streamed;
  streamed.load_transactions = 10'000'000;
  const auto& spec = perf::titan_xp_spec();
  const auto occ = compute_occupancy(spec, {4});
  EXPECT_GT(model_kernel_seconds(spec, occ, gathered),
            model_kernel_seconds(spec, occ, streamed))
      << "dependent gathers must cost more than coalesced streams";
}

TEST(Runner, OverlapPhaseOnlyWithCoProcessing) {
  const Csr g = small_skewed_graph();
  GpuRunConfig cfg;
  cfg.algorithm = Algorithm::kBmp;
  cfg.co_processing = true;
  const auto with = run_gpu(g, cfg);
  cfg.co_processing = false;
  const auto without = run_gpu(g, cfg);
  EXPECT_GT(with.overlap_seconds, 0.0);
  EXPECT_EQ(without.overlap_seconds, 0.0);
  EXPECT_EQ(with.counts, without.counts);
}

}  // namespace
}  // namespace aecnc::gpusim
