// Tests for the GPU simulator: occupancy rules, the unified-memory pager,
// the bitmap pool protocol, functional kernel correctness (bit-exact
// against the CPU reference), multi-pass equivalence, pass estimation,
// co-processing, and the qualitative GPU findings of §5.2.2.
#include <gtest/gtest.h>

#include "core/verify.hpp"
#include "gpusim/runner.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"

namespace aecnc::gpusim {
namespace {

using core::Algorithm;
using graph::Csr;

const Csr& tw_replica() {
  static const Csr g = graph::reorder_degree_descending(
      graph::make_dataset(graph::DatasetId::kTwitter, 1e-4));
  return g;
}

const Csr& fr_replica() {
  static const Csr g = graph::reorder_degree_descending(
      graph::make_dataset(graph::DatasetId::kFriendster, 1e-4));
  return g;
}

GpuRunConfig config_for(Algorithm a, double mem_scale = 1.0) {
  GpuRunConfig c;
  c.algorithm = a;
  c.device_mem_scale = mem_scale;
  return c;
}

// --- Occupancy -------------------------------------------------------------

TEST(Occupancy, PaperDefaults) {
  // 4 warps/block => 128 threads => 16 blocks/SM => 100% occupancy, and
  // 480 bitmaps on a 30-SM TITAN Xp (§5.1, §5.2.2).
  const auto occ = compute_occupancy(perf::titan_xp_spec(), {4});
  EXPECT_EQ(occ.threads_per_block, 128);
  EXPECT_EQ(occ.blocks_per_sm, 16);
  EXPECT_EQ(occ.concurrent_blocks, 480);
  EXPECT_DOUBLE_EQ(occ.occupancy_fraction, 1.0);
}

TEST(Occupancy, OneWarpIsQuarterOccupancy) {
  // 1 warp/block: the 16-blocks/SM cap allows only 512 of 2048 threads.
  const auto occ = compute_occupancy(perf::titan_xp_spec(), {1});
  EXPECT_EQ(occ.blocks_per_sm, 16);
  EXPECT_DOUBLE_EQ(occ.occupancy_fraction, 0.25);
}

TEST(Occupancy, ManyWarpsReduceConcurrentBlocks) {
  const auto occ = compute_occupancy(perf::titan_xp_spec(), {32});
  EXPECT_EQ(occ.threads_per_block, 1024);
  EXPECT_EQ(occ.blocks_per_sm, 2);
  EXPECT_EQ(occ.concurrent_blocks, 60);
  EXPECT_DOUBLE_EQ(occ.occupancy_fraction, 1.0);
}

// --- Unified memory pager ----------------------------------------------------

TEST(UnifiedMemory, FaultsOnceWhenResident) {
  UnifiedMemory um(1 << 20, 4096);  // 256 pages
  const auto base = um.allocate("a", 64 * 1024);
  um.touch(base, 64 * 1024);
  EXPECT_EQ(um.stats().faults, 16u);
  um.touch(base, 64 * 1024);  // already resident
  EXPECT_EQ(um.stats().faults, 16u);
  EXPECT_EQ(um.stats().evictions, 0u);
}

TEST(UnifiedMemory, EvictsWhenOverCapacity) {
  UnifiedMemory um(8 * 4096, 4096);  // 8 pages
  const auto base = um.allocate("a", 32 * 4096);
  um.touch(base, 32 * 4096);
  EXPECT_EQ(um.stats().faults, 32u);
  EXPECT_EQ(um.stats().evictions, 24u);
  EXPECT_EQ(um.resident_pages(), 8u);
}

TEST(UnifiedMemory, ThrashingRefaultsEveryRound) {
  UnifiedMemory um(4 * 4096, 4096);
  const auto base = um.allocate("a", 16 * 4096);
  for (int round = 0; round < 3; ++round) um.touch(base, 16 * 4096);
  // FIFO + working set 4x capacity => every page refaults every round.
  EXPECT_EQ(um.stats().faults, 48u);
}

TEST(UnifiedMemory, RegionsArePageAligned) {
  UnifiedMemory um(1 << 20, 4096);
  const auto a = um.allocate("a", 100);
  const auto b = um.allocate("b", 100);
  EXPECT_EQ(a % 4096, 0u);
  EXPECT_EQ(b % 4096, 0u);
  EXPECT_NE(a / 4096, b / 4096);
  um.touch(a, 100);
  EXPECT_EQ(um.stats().faults, 1u);  // b's page untouched
}

TEST(UnifiedMemory, EvictAllResetsResidencyNotStats) {
  UnifiedMemory um(1 << 20, 4096);
  const auto a = um.allocate("a", 4096 * 4);
  um.touch(a, 4096 * 4);
  um.evict_all();
  EXPECT_EQ(um.resident_pages(), 0u);
  EXPECT_EQ(um.stats().faults, 4u);
  um.touch(a, 4096 * 4);
  EXPECT_EQ(um.stats().faults, 8u);
}

// --- Bitmap pool --------------------------------------------------------------

TEST(BitmapPool, AcquireReleaseProtocol) {
  BitmapPool pool(2, 3, 1000);
  EXPECT_EQ(pool.size(), 6);
  const int a = pool.acquire(0);
  const int b = pool.acquire(0);
  EXPECT_NE(a, b);
  EXPECT_LT(a, 3);  // SM 0's segment
  const int c = pool.acquire(1);
  EXPECT_GE(c, 3);  // SM 1's segment
  pool.release(a);
  const int d = pool.acquire(0);
  EXPECT_EQ(d, a);  // freed slot is reused
  EXPECT_EQ(pool.acquisitions(), 4u);
}

TEST(BitmapPool, SegmentExhaustionThrows) {
  BitmapPool pool(1, 2, 100);
  (void)pool.acquire(0);
  (void)pool.acquire(0);
  EXPECT_THROW((void)pool.acquire(0), std::logic_error);
}

TEST(BitmapPool, MemoryMatchesCardinality) {
  BitmapPool pool(30, 16, 1 << 20);
  EXPECT_EQ(pool.memory_bytes(), 480ull * ((1 << 20) / 8));
}

// --- Pass estimation -----------------------------------------------------------

TEST(EstimatePasses, PaperFormula) {
  // Fits: 1 pass.
  EXPECT_EQ(estimate_passes(1000, 10000, 500, 500), 1);
  // CSR twice the usable memory: 2 passes (section 4.2.2 formula).
  EXPECT_EQ(estimate_passes(18000, 10000, 500, 500), 2);
  EXPECT_EQ(estimate_passes(18001, 10000, 500, 500), 3);
  EXPECT_THROW((void)estimate_passes(1, 1000, 600, 500),
               std::invalid_argument);
}

// --- Functional correctness -------------------------------------------------

class GpuCorrectness
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GpuCorrectness, CountsMatchCpuReference) {
  const int graph_idx = std::get<0>(GetParam());
  const int algo_idx = std::get<1>(GetParam());
  const int passes = std::get<2>(GetParam());

  static const std::vector<Csr> graphs = [] {
    std::vector<Csr> gs;
    gs.push_back(Csr::from_edge_list(graph::clique(16)));
    gs.push_back(graph::reorder_degree_descending(
        Csr::from_edge_list(graph::chung_lu_power_law(600, 5000, 2.1, 91))));
    gs.push_back(tw_replica());
    return gs;
  }();
  const Csr& g = graphs[static_cast<std::size_t>(graph_idx)];

  GpuRunConfig cfg = config_for(
      algo_idx == 0 ? Algorithm::kMps : Algorithm::kBmp);
  cfg.range_filter = algo_idx == 2;
  cfg.num_passes = passes;
  const auto result = run_gpu(g, cfg);
  const auto expected = core::count_reference(g);
  const auto diff = core::diff_counts(g, result.counts, expected);
  EXPECT_FALSE(diff.has_value()) << *diff;
  EXPECT_TRUE(core::counts_symmetric(g, result.counts));
}

std::string gpu_case_name(
    const ::testing::TestParamInfo<std::tuple<int, int, int>>& info) {
  static const char* kGraphs[] = {"clique", "powerlaw", "tw"};
  static const char* kAlgos[] = {"MPS", "BMP", "BMP_RF"};
  return std::string(kGraphs[std::get<0>(info.param)]) + "_" +
         kAlgos[std::get<1>(info.param)] + "_p" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, GpuCorrectness,
    ::testing::Combine(::testing::Range(0, 3), ::testing::Range(0, 3),
                       ::testing::Values(1, 3)),
    gpu_case_name);

TEST(GpuRun, NoCoProcessingAlsoCorrect) {
  const Csr& g = tw_replica();
  GpuRunConfig cfg = config_for(Algorithm::kBmp);
  cfg.co_processing = false;
  const auto result = run_gpu(g, cfg);
  EXPECT_FALSE(core::diff_counts(g, result.counts, core::count_reference(g))
                   .has_value());
}

TEST(GpuRun, WarpCountsDoNotChangeResults) {
  const Csr& g = tw_replica();
  const auto expected = core::count_reference(g);
  for (const int warps : {1, 2, 8, 32}) {
    GpuRunConfig cfg = config_for(Algorithm::kBmp);
    cfg.launch.warps_per_block = warps;
    const auto result = run_gpu(g, cfg);
    EXPECT_FALSE(
        core::diff_counts(g, result.counts, expected).has_value())
        << warps << " warps";
  }
}

// --- Paper findings ------------------------------------------------------------

TEST(GpuFindings, Table5_CoProcessingCutsPostTime) {
  const Csr& g = tw_replica();
  GpuRunConfig with_cp = config_for(Algorithm::kBmp);
  GpuRunConfig without_cp = with_cp;
  without_cp.co_processing = false;
  const auto a = run_gpu(g, with_cp);
  const auto b = run_gpu(g, without_cp);
  // Paper Table 5: 5.6 -> 0.9 s (TW): the final dependent-copy pass is
  // several times cheaper than the binary-search pass.
  EXPECT_LT(a.post_seconds, b.post_seconds);
}

TEST(GpuFindings, Fig8_TooFewPassesThrashesBmpOnFr) {
  // Scale device memory by the replica scale: the FR replica then faces
  // the same relative pressure the 31 GB full-graph CSR puts on the
  // 12 GB card (the bitmap pool keeps its paper proportion too, since
  // pool bytes scale with |V|).
  const Csr& g = fr_replica();
  const double mem_scale = 1e-4;  // == the replica's scale
  GpuRunConfig cfg = config_for(Algorithm::kBmp, mem_scale);
  const auto est = run_gpu(g, cfg);
  EXPECT_GT(est.estimated_passes, 1);
  EXPECT_FALSE(est.thrashed) << "estimated pass count must avoid thrash";

  GpuRunConfig one_pass = cfg;
  one_pass.num_passes = 1;
  const auto forced = run_gpu(g, one_pass);
  EXPECT_TRUE(forced.thrashed);
  EXPECT_GT(forced.um.faults, est.um.faults * 2);
  EXPECT_GT(forced.total_seconds, est.total_seconds);
}

TEST(GpuFindings, Table7_RangeFilterCutsBmpTransactions) {
  const Csr& g = fr_replica();
  const auto plain = run_gpu(g, config_for(Algorithm::kBmp));
  GpuRunConfig rf_cfg = config_for(Algorithm::kBmp);
  rf_cfg.range_filter = true;
  const auto rf = run_gpu(g, rf_cfg);
  // Paper Table 7: ~1.9x from fewer global memory loads.
  EXPECT_LT(rf.kernel.load_transactions, plain.kernel.load_transactions);
  EXPECT_LT(rf.kernel_seconds, plain.kernel_seconds);
}

TEST(GpuFindings, Fig9_LowOccupancyHurtsBmp) {
  const Csr& g = tw_replica();
  GpuRunConfig one = config_for(Algorithm::kBmp);
  one.launch.warps_per_block = 1;
  GpuRunConfig four = config_for(Algorithm::kBmp);
  four.launch.warps_per_block = 4;
  const auto t1 = run_gpu(g, one);
  const auto t4 = run_gpu(g, four);
  EXPECT_GT(t1.kernel_seconds, t4.kernel_seconds);
}

TEST(GpuFindings, MpsSlowerThanBmpOnGpu) {
  // Paper Fig 10: MPS on the GPU is always the slowest; BMP wins on TW.
  const Csr& g = tw_replica();
  const auto mps = run_gpu(g, config_for(Algorithm::kMps));
  const auto bmp = run_gpu(g, config_for(Algorithm::kBmp));
  EXPECT_GT(mps.total_seconds, bmp.total_seconds);
}

TEST(GpuRun, BitmapPoolSizedByOccupancy) {
  const Csr& g = tw_replica();
  GpuRunConfig cfg = config_for(Algorithm::kBmp);
  cfg.launch.warps_per_block = 4;
  const auto r = run_gpu(g, cfg);
  EXPECT_EQ(r.num_bitmaps, 480);  // 30 SMs x 16 blocks
  EXPECT_EQ(r.bitmap_pool_bytes,
            480ull * ((g.num_vertices() + 63) / 64 * 8));
  GpuRunConfig wide = cfg;
  wide.launch.warps_per_block = 32;
  const auto rw = run_gpu(g, wide);
  EXPECT_EQ(rw.num_bitmaps, 60);  // fewer, bigger blocks -> fewer bitmaps
}

}  // namespace
}  // namespace aecnc::gpusim
