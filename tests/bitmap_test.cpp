// Tests for the bitmap index and range-filtered bitmap: set/flip/test
// semantics, the construct-use-clear lifecycle of Algorithm 2, and the
// range filter's skip correctness.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "bitmap/bitmap.hpp"
#include "bitmap/range_filter.hpp"
#include "intersect/merge.hpp"
#include "util/prng.hpp"

namespace aecnc::bitmap {
namespace {

using Set = std::vector<VertexId>;

Set random_sorted_set(std::size_t size, VertexId universe,
                      util::Xoshiro256& rng) {
  std::set<VertexId> s;
  while (s.size() < size) s.insert(rng.below(universe));
  return Set(s.begin(), s.end());
}

TEST(Bitmap, SetTestFlipClear) {
  Bitmap b(200);
  EXPECT_FALSE(b.test(63));
  b.set(63);
  b.set(64);
  b.set(199);
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(199));
  EXPECT_FALSE(b.test(0));
  b.flip(63);
  EXPECT_FALSE(b.test(63));
  b.clear(64);
  EXPECT_FALSE(b.test(64));
  EXPECT_EQ(b.popcount(), 1u);
}

TEST(Bitmap, SetIsIdempotentFlipIsNot) {
  Bitmap b(64);
  b.set(5);
  b.set(5);
  EXPECT_TRUE(b.test(5));
  EXPECT_EQ(b.popcount(), 1u);
  b.flip(5);
  EXPECT_FALSE(b.test(5));
  b.flip(5);
  EXPECT_TRUE(b.test(5));
}

TEST(Bitmap, ConstructClearLifecycleRestoresAllZero) {
  // The exact lifecycle of Algorithm 2: build on N(u), intersect, flip
  // the same bits back. The bitmap must return to all-zero.
  util::Xoshiro256 rng(1);
  Bitmap b(10000);
  for (int round = 0; round < 20; ++round) {
    const Set nu = random_sorted_set(50 + rng.below(200), 10000, rng);
    b.set_all(nu);
    EXPECT_EQ(b.popcount(), nu.size());
    b.clear_all(nu);
    EXPECT_TRUE(b.all_zero()) << "round " << round;
  }
}

TEST(Bitmap, MemoryBytesMatchesPaperFormula) {
  // |V|/8 bytes, rounded to 64-bit words.
  EXPECT_EQ(Bitmap(64).memory_bytes(), 8u);
  EXPECT_EQ(Bitmap(65).memory_bytes(), 16u);
  // FR-scale: 124,836,180 vertices -> ~14.88 MB (Table 3 reports 14.9MB).
  const Bitmap fr(124836180);
  EXPECT_NEAR(static_cast<double>(fr.memory_bytes()) / (1024 * 1024), 14.88,
              0.05);
}

TEST(BitmapIntersect, MatchesReferenceOnRandomSets) {
  util::Xoshiro256 rng(2);
  Bitmap b(5000);
  for (int round = 0; round < 50; ++round) {
    const Set nu = random_sorted_set(100, 5000, rng);
    const Set nv = random_sorted_set(80, 5000, rng);
    b.set_all(nu);
    EXPECT_EQ(bitmap_intersect_count(b, nv),
              intersect::reference_count(nu, nv));
    b.clear_all(nu);
  }
}

TEST(BitmapIntersect, EmptyArray) {
  Bitmap b(100);
  b.set(3);
  EXPECT_EQ(bitmap_intersect_count(b, {}), 0u);
}

TEST(RangeFilter, TestMatchesPlainBitmap) {
  util::Xoshiro256 rng(3);
  const VertexId universe = 100000;
  RangeFilteredBitmap rf(universe);  // scale 4096
  const Set nu = random_sorted_set(500, universe, rng);
  rf.set_all(nu);
  for (const VertexId v : nu) EXPECT_TRUE(rf.test(v));
  for (int i = 0; i < 2000; ++i) {
    const VertexId v = rng.below(universe);
    const bool expected = std::binary_search(nu.begin(), nu.end(), v);
    EXPECT_EQ(rf.test(v), expected) << v;
  }
}

TEST(RangeFilter, ClearRestoresAllZeroWithSharedRanges) {
  // Neighbors deliberately packed into the same 4096-wide ranges so the
  // shared-summary-bit clearing path is exercised.
  RangeFilteredBitmap rf(1 << 20);
  Set nu;
  for (VertexId i = 0; i < 64; ++i) nu.push_back(4096 * 3 + i * 7);
  for (VertexId i = 0; i < 64; ++i) nu.push_back(4096 * 9 + i * 11);
  std::sort(nu.begin(), nu.end());
  nu.erase(std::unique(nu.begin(), nu.end()), nu.end());
  rf.set_all(nu);
  EXPECT_FALSE(rf.all_zero());
  rf.clear_all(nu);
  EXPECT_TRUE(rf.all_zero());
}

TEST(RangeFilter, IntersectMatchesReference) {
  util::Xoshiro256 rng(4);
  const VertexId universe = 1 << 18;
  RangeFilteredBitmap rf(universe);
  for (int round = 0; round < 30; ++round) {
    const Set nu = random_sorted_set(200, universe, rng);
    const Set nv = random_sorted_set(150, universe, rng);
    rf.set_all(nu);
    EXPECT_EQ(rf_intersect_count(rf, nv), intersect::reference_count(nu, nv));
    rf.clear_all(nu);
    EXPECT_TRUE(rf.all_zero());
  }
}

TEST(RangeFilter, SkipsRangesWithoutBits) {
  // All set bits in one range; probes elsewhere must be filtered without
  // touching the big bitmap.
  RangeFilteredBitmap rf(1 << 20);
  const Set nu = {100, 200, 300};
  rf.set_all(nu);
  intersect::StatsCounter stats;
  Set probes;
  for (VertexId i = 1; i <= 50; ++i) probes.push_back(8192 + i * 4096);
  (void)rf_intersect_count(rf, probes, stats);
  EXPECT_EQ(stats.rf_probes, probes.size());
  EXPECT_EQ(stats.rf_skips, probes.size());   // every probe filtered
  EXPECT_EQ(stats.bitmap_probes, 0u);          // big bitmap untouched
}

TEST(RangeFilter, CustomRangeScale) {
  RangeFilteredBitmap rf(10000, 256);
  EXPECT_EQ(rf.range_scale(), 256u);
  const Set nu = {0, 255, 256, 9999};
  rf.set_all(nu);
  for (const VertexId v : nu) EXPECT_TRUE(rf.test(v));
  EXPECT_FALSE(rf.test(257));
  rf.clear_all(nu);
  EXPECT_TRUE(rf.all_zero());
}

TEST(RangeFilter, SummaryBytesAreSmall) {
  // Summary must be ~1/4096 of the big bitmap: that is what lets it live
  // in L1 (Table 3's "+RF" column adds a few KB only).
  const RangeFilteredBitmap rf(1u << 26);  // 8 MB big bitmap
  EXPECT_LE(rf.summary_bytes(), rf.big().memory_bytes() / 4096 + 64);
}

class RangeScaleSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RangeScaleSweep, CorrectAtEveryScale) {
  const std::uint64_t scale = GetParam();
  util::Xoshiro256 rng(scale);
  const VertexId universe = 1 << 16;
  RangeFilteredBitmap rf(universe, scale);
  const Set nu = random_sorted_set(300, universe, rng);
  const Set nv = random_sorted_set(300, universe, rng);
  rf.set_all(nu);
  EXPECT_EQ(rf_intersect_count(rf, nv), intersect::reference_count(nu, nv));
  rf.clear_all(nu);
  EXPECT_TRUE(rf.all_zero());
}

INSTANTIATE_TEST_SUITE_P(Scales, RangeScaleSweep,
                         ::testing::Values(64, 256, 1024, 4096, 16384));

}  // namespace
}  // namespace aecnc::bitmap
