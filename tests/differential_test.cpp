// Differential kernel cross-checks: every MergeKind, the pivot-skip stack,
// the MPS dispatcher, and the bitmap/BMP index paths must agree with the
// scalar merge reference on randomized adversarial inputs (empty, aliased,
// unaligned, W-boundary, skewed). The harness lives in src/check so the
// sanitizer CI jobs and future perf PRs can rerun it with bigger budgets.
#include <gtest/gtest.h>

#include "check/differential.hpp"
#include "intersect/dispatch.hpp"
#include "test_seed.hpp"

namespace aecnc {
namespace {

using testsupport::mix_seed;

void expect_clean(const check::DifferentialReport& report) {
  EXPECT_GT(report.cases_run, 0u);
  EXPECT_GT(report.kernels_checked, 0u);
  for (const auto& mismatch : report.mismatches) ADD_FAILURE() << mismatch;
}

TEST(CheckDifferential, DefaultSweepIsClean) {
  check::DifferentialConfig config;
  config.seed = mix_seed(config.seed);
  expect_clean(check::run_kernel_differential(config));
}

TEST(CheckDifferential, MultipleSeedsAreClean) {
  for (const std::uint64_t seed : {1ull, 42ull, 0xdeadbeefull}) {
    check::DifferentialConfig config;
    config.seed = mix_seed(seed);
    config.cases = 120;
    expect_clean(check::run_kernel_differential(config));
  }
}

TEST(CheckDifferential, DenseSmallUniverseForcesCollisions) {
  // A tiny universe makes nearly every element shared, stressing the
  // all-match paths (every lane hits on every rotation).
  check::DifferentialConfig config;
  config.seed = mix_seed(7);
  config.universe = 96;
  config.max_len = 96;
  expect_clean(check::run_kernel_differential(config));
}

TEST(CheckDifferential, LongListsCrossBlockBoundaries) {
  // Longer lists than the default sweep: many full vector blocks per pair
  // so block-advance decisions (a_last vs b_last ties included) repeat.
  check::DifferentialConfig config;
  config.seed = mix_seed(11);
  config.cases = 60;
  config.max_len = 5000;
  config.universe = 20000;
  config.include_index_paths = false;  // comparison kernels are the target
  expect_clean(check::run_kernel_differential(config));
}

TEST(CheckDifferential, ReportCountsKernels) {
  check::DifferentialConfig config;
  config.cases = 10;
  const auto report = check::run_kernel_differential(config);
  EXPECT_EQ(report.cases_run, 10u);
  // At least the portable kernels (branchless, block4/16, pivot-skip,
  // 4 vb kinds, 3 mps configs) and the index paths ran on every case.
  EXPECT_GE(report.kernels_checked, report.cases_run * 10);
}

TEST(CheckDifferential, CoversHostSimdKinds) {
  // Documents (and asserts) that the sweep exercises the widest kernel
  // this host supports — on AVX-512 runners the avx512 VB kernel is in
  // the kernel set, not silently skipped.
  check::DifferentialConfig config;
  config.cases = 40;
  const auto report = check::run_kernel_differential(config);
  expect_clean(report);
  const auto best = intersect::best_merge_kind();
  EXPECT_TRUE(intersect::merge_kind_supported(best));
}

}  // namespace
}  // namespace aecnc
