// Integration tests for the core library: every algorithm/configuration
// must produce the brute-force ground truth on a spread of graph shapes,
// sequentially and under the OpenMP skeleton; plus FindSrc, symmetric
// assignment, reordering translation, and triangle derivation.
#include <gtest/gtest.h>

#include <string>

#include "core/api.hpp"
#include "core/parallel.hpp"
#include "core/sequential.hpp"
#include "core/verify.hpp"
#include "graph/datasets.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"
#include "util/prng.hpp"

namespace aecnc::core {
namespace {

using graph::Csr;
using graph::EdgeList;

struct GraphCase {
  const char* name;
  Csr graph;
};

std::vector<GraphCase> test_graphs() {
  std::vector<GraphCase> cases;
  cases.push_back({"clique8", Csr::from_edge_list(graph::clique(8))});

  {
    EdgeList path(10);
    for (VertexId v = 0; v + 1 < 10; ++v) path.add(v, v + 1);
    cases.push_back({"path10", Csr::from_edge_list(std::move(path))});
  }
  {
    EdgeList star(65);
    for (VertexId v = 1; v < 65; ++v) star.add(0, v);
    cases.push_back({"star64", Csr::from_edge_list(std::move(star))});
  }
  cases.push_back(
      {"er", Csr::from_edge_list(graph::erdos_renyi(800, 6000, 31))});
  cases.push_back({"powerlaw", Csr::from_edge_list(graph::chung_lu_power_law(
                                   1000, 8000, 2.1, 33))});
  {
    auto hubby = graph::erdos_renyi(600, 2500, 35);
    graph::add_hubs(hubby, 2, 400, 36);
    cases.push_back({"hubby", Csr::from_edge_list(std::move(hubby))});
  }
  cases.push_back({"empty", Csr::from_edge_list(EdgeList(5))});
  return cases;
}

struct AlgoCase {
  const char* name;
  Options options;
};

std::vector<AlgoCase> algo_cases() {
  std::vector<AlgoCase> cases;
  auto push = [&cases](const char* name, Options o) {
    cases.push_back({name, o});
  };

  Options m;
  m.algorithm = Algorithm::kMergeBaseline;
  m.parallel = false;
  push("M_seq", m);
  m.parallel = true;
  push("M_par", m);

  Options mps;
  mps.algorithm = Algorithm::kMps;
  mps.parallel = false;
  mps.mps.kind = intersect::MergeKind::kBlockScalar;
  push("MPS_seq_block", mps);
  mps.mps.kind = intersect::best_merge_kind();
  push("MPS_seq_best", mps);
  mps.parallel = true;
  push("MPS_par_best", mps);
  mps.mps.skew_threshold = 2.0;  // force pivot-skip on mild skew
  push("MPS_par_t2", mps);
  mps.mps.skew_threshold = 1e18;  // never pivot-skip
  push("MPS_par_noskew", mps);

  Options bmp;
  bmp.algorithm = Algorithm::kBmp;
  bmp.parallel = false;
  push("BMP_seq", bmp);
  bmp.bmp_range_filter = true;
  push("BMP_RF_seq", bmp);
  bmp.parallel = true;
  push("BMP_RF_par", bmp);
  bmp.bmp_range_filter = false;
  push("BMP_par", bmp);
  bmp.task_size = 7;  // tiny tasks stress the FindSrc cache
  push("BMP_par_T7", bmp);

  // Prefetch ablation: hints must never change results, on any driver.
  Options nopf;
  nopf.algorithm = Algorithm::kMps;
  nopf.prefetch = false;
  nopf.mps.skew_threshold = 2.0;  // exercise pivot-skip without prefetch
  push("MPS_par_nopf", nopf);
  nopf.parallel = false;
  push("MPS_seq_nopf", nopf);
  nopf.algorithm = Algorithm::kBmp;
  nopf.parallel = true;
  push("BMP_par_nopf", nopf);
  nopf.bmp_range_filter = true;
  nopf.parallel = false;
  push("BMP_RF_seq_nopf", nopf);
  return cases;
}

class AllAlgorithmsTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllAlgorithmsTest, MatchesBruteForce) {
  static const auto graphs = test_graphs();
  static const auto algos = algo_cases();
  const auto& gc = graphs[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const auto& ac = algos[static_cast<std::size_t>(std::get<1>(GetParam()))];

  const CountArray expected = count_reference(gc.graph);
  const CountArray actual = count_common_neighbors(gc.graph, ac.options);
  const auto diff = diff_counts(gc.graph, actual, expected);
  EXPECT_FALSE(diff.has_value()) << gc.name << "/" << ac.name << ": " << *diff;
  EXPECT_TRUE(counts_symmetric(gc.graph, actual));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllAlgorithmsTest,
    ::testing::Combine(::testing::Range(0, 7), ::testing::Range(0, 16)),
    [](const auto& info) {
      static const auto graphs = test_graphs();
      static const auto algos = algo_cases();
      return std::string(graphs[static_cast<std::size_t>(
                                    std::get<0>(info.param))].name) +
             "_" +
             algos[static_cast<std::size_t>(std::get<1>(info.param))].name;
    });

TEST(FindSrc, CachedLookupsAgreeWithBinarySearch) {
  const Csr g =
      Csr::from_edge_list(graph::chung_lu_power_law(500, 4000, 2.2, 41));
  VertexId cached = 0;
  for (EdgeId e = 0; e < g.num_directed_edges(); ++e) {
    EXPECT_EQ(find_src(g, e, cached), g.src_of(e)) << "slot " << e;
  }
}

TEST(FindSrc, NonMonotoneAccessPattern) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(300, 2000, 43));
  util::Xoshiro256 rng(44);
  VertexId cached = 0;
  for (int i = 0; i < 5000; ++i) {
    const EdgeId e = rng.below(static_cast<std::uint32_t>(g.num_directed_edges()));
    EXPECT_EQ(find_src(g, e, cached), g.src_of(e));
  }
}

TEST(FindSrc, SkipsZeroDegreeVertices) {
  // Vertices 0 and 2 isolated; slots belong to 1, 3, 4.
  EdgeList e(5);
  e.add(1, 3);
  e.add(3, 4);
  const Csr g = Csr::from_edge_list(e);
  VertexId cached = 0;
  for (EdgeId slot = 0; slot < g.num_directed_edges(); ++slot) {
    const VertexId u = find_src(g, slot, cached);
    EXPECT_NE(u, 0u);
    EXPECT_NE(u, 2u);
    EXPECT_EQ(u, g.src_of(slot));
  }
}

// Regression: count_parallel reuses cached per-thread contexts across
// calls (bitmaps + FindSrc stash). A stale cached_src from a previous
// graph or scheduler must never leak: run every scheduler back to back
// on the SAME options struct, across graphs of different sizes (the
// second smaller, so a stale stash would be out of range), and with a
// task_size that makes tasks span vertex boundaries exactly at the
// alignment point.
TEST(ContextReuse, SchedulerSwitchAndGraphShrinkStayCorrect) {
  const Csr big = Csr::from_edge_list(
      graph::chung_lu_power_law(1200, 9000, 2.1, 77));
  // All degrees equal 8: with task_size 8 every task boundary lands
  // exactly on a vertex boundary, so the first slot of each task has a
  // source the previous task never touched — worst case for the stash.
  EdgeList reg(64);
  for (VertexId v = 0; v < 64; ++v) {
    for (VertexId k = 1; k <= 4; ++k) reg.add(v, (v + k) % 64);
  }
  const Csr small = Csr::from_edge_list(std::move(reg));
  ASSERT_EQ(small.max_degree(), 8u);

  const CountArray big_expected = count_reference(big);
  const CountArray small_expected = count_reference(small);

  for (const Algorithm algo : {Algorithm::kMps, Algorithm::kBmp}) {
    Options opt;  // ONE options struct reused across every run below
    opt.algorithm = algo;
    opt.task_size = 8;
    for (const Scheduler sched : {Scheduler::kOpenMp, Scheduler::kTaskPool,
                                  Scheduler::kOpenMp}) {
      opt.scheduler = sched;
      opt.granularity = TaskGranularity::kFineGrained;
      auto diff = diff_counts(big, count_parallel(big, opt), big_expected);
      EXPECT_FALSE(diff.has_value()) << *diff;
      diff = diff_counts(small, count_parallel(small, opt), small_expected);
      EXPECT_FALSE(diff.has_value()) << *diff;
    }
    opt.granularity = TaskGranularity::kCoarseGrained;
    const auto diff =
        diff_counts(small, count_parallel(small, opt), small_expected);
    EXPECT_FALSE(diff.has_value()) << *diff;
  }
}

// Repeated identical calls hit the warm context cache; counts must be
// bit-identical every time (dirty cached bitmaps would skew BMP counts).
TEST(ContextReuse, RepeatedBmpCallsStayIdentical) {
  auto hubby = graph::erdos_renyi(600, 2500, 35);
  graph::add_hubs(hubby, 2, 400, 36);
  const Csr g = Csr::from_edge_list(std::move(hubby));
  Options opt;
  opt.algorithm = Algorithm::kBmp;
  opt.task_size = 64;
  const CountArray first = count_parallel(g, opt);
  const CountArray expected = count_reference(g);
  EXPECT_FALSE(diff_counts(g, first, expected).has_value());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(count_parallel(g, opt), first) << "run " << i;
  }
  opt.bmp_range_filter = true;
  const CountArray rf_first = count_parallel(g, opt);
  EXPECT_FALSE(diff_counts(g, rf_first, expected).has_value());
  EXPECT_EQ(count_parallel(g, opt), rf_first);
}

TEST(Api, ReorderedCountsTranslateBack) {
  const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(800, 6000, 2.1, 51));
  Options opt;
  opt.algorithm = Algorithm::kBmp;
  const CountArray direct = count_reference(g);
  const CountArray reordered = count_with_reorder(g, opt);
  const auto diff = diff_counts(g, reordered, direct);
  EXPECT_FALSE(diff.has_value()) << *diff;
}

TEST(Api, ReorderHandlesIsolatedVertices) {
  // Isolated vertices have no slots, but the degree sort must still
  // place them and the slot translation must skip them cleanly.
  EdgeList e(10);  // vertices 0, 5, 9 stay isolated
  e.add(1, 2);
  e.add(2, 3);
  e.add(3, 1);
  e.add(6, 7);
  e.add(7, 8);
  const Csr g = Csr::from_edge_list(e);
  ASSERT_EQ(g.num_vertices(), 10u);
  for (const auto algorithm : {Algorithm::kBmp, Algorithm::kMps}) {
    Options opt;
    opt.algorithm = algorithm;
    const auto diff =
        diff_counts(g, count_with_reorder(g, opt), count_reference(g));
    EXPECT_FALSE(diff.has_value()) << *diff;
  }
}

TEST(Api, ReorderHandlesAllEqualDegrees) {
  // A cycle: every vertex has degree 2, so the degree-descending sort is
  // all ties — the permutation is whatever the sort's tie-break yields,
  // and translation back must still be exact.
  constexpr VertexId kN = 64;
  EdgeList e(kN);
  for (VertexId v = 0; v < kN; ++v) e.add(v, (v + 1) % kN);
  const Csr g = Csr::from_edge_list(e);
  Options opt;
  opt.algorithm = Algorithm::kBmp;
  const auto diff =
      diff_counts(g, count_with_reorder(g, opt), count_reference(g));
  EXPECT_FALSE(diff.has_value()) << *diff;

  // Same for a union of triangles (equal degrees with nonzero counts).
  EdgeList t(12);
  for (VertexId base = 0; base < 12; base += 3) {
    t.add(base, base + 1);
    t.add(base + 1, base + 2);
    t.add(base + 2, base);
  }
  const Csr tri = Csr::from_edge_list(t);
  const auto tri_diff =
      diff_counts(tri, count_with_reorder(tri, opt), count_reference(tri));
  EXPECT_FALSE(tri_diff.has_value()) << *tri_diff;
}

TEST(Api, ReorderGivesBmpItsComplexityPrecondition) {
  const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(500, 3000, 2.0, 53));
  const Csr r = graph::reorder_degree_descending(g);
  EXPECT_TRUE(graph::is_degree_descending(r));
  // For every forward edge u < v in the reordered graph, BMP loops over
  // the smaller set: d_u >= d_v.
  for (VertexId u = 0; u < r.num_vertices(); ++u) {
    for (const VertexId v : r.neighbors(u)) {
      if (u < v) {
        EXPECT_GE(r.degree(u), r.degree(v));
      }
    }
  }
}

TEST(Api, TriangleCountOnKnownGraphs) {
  EXPECT_EQ(triangle_count(Csr::from_edge_list(graph::clique(4))), 4u);
  EXPECT_EQ(triangle_count(Csr::from_edge_list(graph::clique(6))), 20u);
  EdgeList path(5);
  for (VertexId v = 0; v + 1 < 5; ++v) path.add(v, v + 1);
  EXPECT_EQ(triangle_count(Csr::from_edge_list(path)), 0u);
}

TEST(Api, TriangleCountAgreesAcrossAlgorithms) {
  const Csr g = Csr::from_edge_list(graph::erdos_renyi(400, 4000, 61));
  Options mps;
  mps.algorithm = Algorithm::kMps;
  Options bmp;
  bmp.algorithm = Algorithm::kBmp;
  Options m;
  m.algorithm = Algorithm::kMergeBaseline;
  const auto t = triangle_count(g, m);
  EXPECT_EQ(triangle_count(g, mps), t);
  EXPECT_EQ(triangle_count(g, bmp), t);
}

TEST(Api, InstrumentedRunsProduceSameCounts) {
  const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(600, 5000, 2.2, 71));
  const CountArray expected = count_reference(g);
  for (const Algorithm a :
       {Algorithm::kMergeBaseline, Algorithm::kMps, Algorithm::kBmp}) {
    Options opt;
    opt.algorithm = a;
    intersect::StatsCounter stats;
    const CountArray actual = count_instrumented(g, opt, stats);
    EXPECT_FALSE(diff_counts(g, actual, expected).has_value())
        << algorithm_name(a);
    EXPECT_GT(stats.intersections, 0u) << algorithm_name(a);
  }
}

TEST(Api, InstrumentedBmpCountsBitmapWork) {
  const Csr g = Csr::from_edge_list(graph::clique(32));
  Options opt;
  opt.algorithm = Algorithm::kBmp;
  intersect::StatsCounter stats;
  (void)count_instrumented(g, opt, stats);
  EXPECT_GT(stats.bitmap_probes, 0u);
  EXPECT_GT(stats.bitmap_sets, 0u);
  EXPECT_EQ(stats.block_steps, 0u);

  opt.bmp_range_filter = true;
  intersect::StatsCounter rf_stats;
  (void)count_instrumented(g, opt, rf_stats);
  EXPECT_GT(rf_stats.rf_probes, 0u);
}

TEST(Verify, DiffReportsFirstMismatch) {
  const Csr g = Csr::from_edge_list(graph::clique(4));
  CountArray a = count_reference(g);
  CountArray b = a;
  b[3] += 1;
  const auto diff = diff_counts(g, b, a);
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("expected"), std::string::npos);
  EXPECT_FALSE(diff_counts(g, a, a).has_value());
}

TEST(Verify, SymmetryDetectsViolations)  {
  const Csr g = Csr::from_edge_list(graph::clique(4));
  CountArray a = count_reference(g);
  EXPECT_TRUE(counts_symmetric(g, a));
  a[0] += 1;
  EXPECT_FALSE(counts_symmetric(g, a));
}

TEST(Parallel, ThreadCountsAndTaskSizesAgree) {
  const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(700, 6000, 2.1, 81));
  const CountArray expected = count_reference(g);
  for (const int threads : {1, 2, 4}) {
    for (const std::uint32_t task : {1u, 32u, 100000u}) {
      Options opt;
      opt.algorithm = Algorithm::kMps;
      opt.num_threads = threads;
      opt.task_size = task;
      const auto actual = count_parallel(g, opt);
      EXPECT_FALSE(diff_counts(g, actual, expected).has_value())
          << "threads=" << threads << " task=" << task;
    }
  }
}

TEST(Parallel, BmpManyThreadsOnSmallGraph) {
  // More threads than vertices with work: exercises idle thread states.
  const Csr g = Csr::from_edge_list(graph::clique(5));
  Options opt;
  opt.algorithm = Algorithm::kBmp;
  opt.num_threads = 8;
  opt.task_size = 1;
  EXPECT_FALSE(
      diff_counts(g, count_parallel(g, opt), count_reference(g)).has_value());
}

TEST(Datasets, SmallReplicasCountCorrectly) {
  // End-to-end: dataset replica -> reorder -> all three algorithms agree.
  const Csr g = graph::make_dataset(graph::DatasetId::kTwitter, 5e-5);
  const Csr r = graph::reorder_degree_descending(g);
  const CountArray expected = count_reference(r);
  for (const Algorithm a :
       {Algorithm::kMergeBaseline, Algorithm::kMps, Algorithm::kBmp}) {
    Options opt;
    opt.algorithm = a;
    EXPECT_FALSE(
        diff_counts(r, count_common_neighbors(r, opt), expected).has_value())
        << algorithm_name(a);
  }
}

TEST(Relabel, BitIdenticalToSequentialMpsOnEveryReplica) {
  // The acceptance contract of Options::relabel: for every dataset
  // replica, algorithm, and thread count, relabel-on counts come back in
  // the caller's slot order bit-identical to a plain sequential MPS run
  // on the unrelabeled graph.
  for (const graph::DatasetId id : graph::kAllDatasets) {
    const Csr g = graph::make_dataset(id, 5e-5);
    const CountArray expected = count_sequential_mps(g, {});
    for (const Algorithm a :
         {Algorithm::kMergeBaseline, Algorithm::kMps, Algorithm::kBmp}) {
      for (const int threads : {1, 2, 4, 8}) {
        Options opt;
        opt.algorithm = a;
        opt.relabel = true;
        opt.num_threads = threads;
        ASSERT_EQ(count_common_neighbors(g, opt), expected)
            << graph::dataset_name(id) << "/" << algorithm_name(a)
            << "/p=" << threads;
      }
    }
    // The sharded route: relabel first, 2D-partition the internal graph,
    // translate counts back (docs/sharding.md).
    Options sharded;
    sharded.relabel = true;
    sharded.num_shards = 3;
    ASSERT_EQ(count_common_neighbors(g, sharded), expected)
        << graph::dataset_name(id) << " (sharded)";
  }
}

TEST(Packed, SequentialDriverMatchesMps) {
  // Thresholds straddling the universe: tails everywhere, mixed, none.
  const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(900, 7000, 2.1, 83));
  const CountArray expected = count_sequential_mps(g, {});
  for (const VertexId threshold : {VertexId{64}, VertexId{512},
                                   VertexId{32768}}) {
    EXPECT_EQ(count_sequential_bmp_packed(g, threshold), expected)
        << "threshold " << threshold;
  }
}

TEST(Packed, ParallelBmpMatchesMpsAcrossThreadsAndSchedules) {
  const Csr base = Csr::from_edge_list(
      graph::chung_lu_power_law(800, 6400, 2.0, 85));
  const Csr g = graph::reorder_degree_descending(base);
  const CountArray expected = count_sequential_mps(g, {});
  for (const int threads : {1, 2, 4, 8}) {
    for (const auto granularity : {TaskGranularity::kFineGrained,
                                   TaskGranularity::kCoarseGrained}) {
      Options opt;
      opt.algorithm = Algorithm::kBmp;
      opt.bmp_packed = true;
      opt.pack_threshold = 256;  // force the bitmap tail fallback too
      opt.num_threads = threads;
      opt.granularity = granularity;
      ASSERT_EQ(count_common_neighbors(g, opt), expected)
          << "p=" << threads << " granularity="
          << static_cast<int>(granularity);
    }
  }
}

TEST(Packed, RelabelPlusPackedOnReplicas) {
  // The tentpole configuration: relabel + packed BMP, parallel, against
  // plain sequential MPS on the untouched graph.
  for (const graph::DatasetId id : graph::kAllDatasets) {
    const Csr g = graph::make_dataset(id, 5e-5);
    const CountArray expected = count_sequential_mps(g, {});
    Options opt;
    opt.algorithm = Algorithm::kBmp;
    opt.relabel = true;
    opt.bmp_packed = true;
    opt.num_threads = 4;
    ASSERT_EQ(count_common_neighbors(g, opt), expected)
        << graph::dataset_name(id);
    opt.parallel = false;
    ASSERT_EQ(count_common_neighbors(g, opt), expected)
        << graph::dataset_name(id) << " (sequential)";
  }
}

TEST(Packed, VbPrefetchToggleNeverChangesCounts) {
  const Csr g = Csr::from_edge_list(
      graph::chung_lu_power_law(600, 5000, 2.2, 87));
  const CountArray expected = count_sequential_mps(g, {});
  for (const bool vb_pf : {false, true}) {
    Options opt;
    opt.algorithm = Algorithm::kMps;
    opt.vb_prefetch = vb_pf;
    opt.parallel = false;
    EXPECT_EQ(count_common_neighbors(g, opt), expected)
        << "vb_prefetch=" << vb_pf;
    opt.parallel = true;
    EXPECT_EQ(count_common_neighbors(g, opt), expected)
        << "vb_prefetch=" << vb_pf << " (parallel)";
  }
}

}  // namespace
}  // namespace aecnc::core
