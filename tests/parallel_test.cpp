// Tests for the task-pool scheduler and the Scheduler option: coverage
// (every index processed exactly once), load statistics, and count
// equivalence with the OpenMP skeleton.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/api.hpp"
#include "core/verify.hpp"
#include "graph/generators.hpp"
#include "parallel/task_pool.hpp"

namespace aecnc {
namespace {

TEST(TaskPool, CoversEveryIndexExactlyOnce) {
  for (const std::uint64_t total : {0ull, 1ull, 7ull, 1000ull, 100003ull}) {
    for (const std::uint64_t task : {1ull, 16ull, 4096ull}) {
      std::vector<std::atomic<std::uint32_t>> hits(total);
      parallel::parallel_for_dynamic(
          total, task, 4, [&](std::uint64_t b, std::uint64_t e, int) {
            for (std::uint64_t i = b; i < e; ++i) {
              hits[i].fetch_add(1, std::memory_order_relaxed);
            }
          });
      for (std::uint64_t i = 0; i < total; ++i) {
        ASSERT_EQ(hits[i].load(), 1u)
            << "index " << i << " total=" << total << " task=" << task;
      }
    }
  }
}

TEST(TaskPool, WorkerIndexIsDense) {
  std::atomic<std::uint32_t> seen{0};
  parallel::parallel_for_dynamic(1000, 10, 3,
                                 [&](std::uint64_t, std::uint64_t, int w) {
                                   ASSERT_GE(w, 0);
                                   ASSERT_LT(w, 3);
                                   seen.fetch_or(1u << w);
                                 });
  // At least worker 0 must have run; with 100 tasks usually all three.
  EXPECT_NE(seen.load() & 1u, 0u);
}

TEST(TaskPool, StatsAccountAllTasks) {
  const auto stats = parallel::parallel_for_dynamic_stats(
      10000, 100, 4, [](std::uint64_t, std::uint64_t, int) {});
  EXPECT_EQ(stats.total_tasks, 100u);
  EXPECT_EQ(stats.tasks_per_worker.size(), 4u);
  EXPECT_EQ(std::accumulate(stats.tasks_per_worker.begin(),
                            stats.tasks_per_worker.end(), std::uint64_t{0}),
            100u);
  EXPECT_GE(stats.imbalance(), 1.0);
}

TEST(TaskPool, SingleWorkerIsSequential) {
  std::vector<std::uint64_t> order;
  parallel::parallel_for_dynamic(100, 10, 1,
                                 [&](std::uint64_t b, std::uint64_t, int) {
                                   order.push_back(b);
                                 });
  ASSERT_EQ(order.size(), 10u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(TaskPool, ZeroTotalRunsNothing) {
  bool ran = false;
  parallel::parallel_for_dynamic(0, 8, 4,
                                 [&](std::uint64_t, std::uint64_t, int) {
                                   ran = true;
                                 });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, CoversEveryIndexExactlyOnceAcrossRepeatedRuns) {
  parallel::WorkerPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4);
  // The same pool executes several jobs back-to-back — the persistent-
  // thread property the serve layer relies on for context reuse.
  for (const std::uint64_t total : {1ull, 7ull, 1000ull, 100003ull}) {
    std::vector<std::atomic<std::uint32_t>> hits(total);
    pool.run(total, 16, [&](std::uint64_t b, std::uint64_t e, int) {
      for (std::uint64_t i = b; i < e; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (std::uint64_t i = 0; i < total; ++i) {
      ASSERT_EQ(hits[i].load(), 1u) << "index " << i << " total=" << total;
    }
  }
}

TEST(WorkerPool, WorkerIndexStableAndDense) {
  parallel::WorkerPool pool(3);
  std::atomic<std::uint32_t> seen{0};
  for (int round = 0; round < 5; ++round) {
    pool.run(300, 1, [&](std::uint64_t, std::uint64_t, int w) {
      ASSERT_GE(w, 0);
      ASSERT_LT(w, 3);
      seen.fetch_or(1u << w);
    });
  }
  EXPECT_NE(seen.load(), 0u);
}

TEST(WorkerPool, PerWorkerStatePersistsAcrossRuns) {
  parallel::WorkerPool pool(2);
  std::vector<std::uint64_t> per_worker(2, 0);
  for (int round = 0; round < 3; ++round) {
    pool.run(100, 5, [&](std::uint64_t b, std::uint64_t e, int w) {
      per_worker[static_cast<std::size_t>(w)] += e - b;
    });
  }
  // All 300 indices landed in contexts that survived every run.
  EXPECT_EQ(per_worker[0] + per_worker[1], 300u);
}

TEST(WorkerPool, ZeroTotalRunsNothing) {
  parallel::WorkerPool pool(2);
  std::atomic<bool> ran{false};
  pool.run(0, 8, [&](std::uint64_t, std::uint64_t, int) { ran = true; });
  EXPECT_FALSE(ran.load());
}

class SchedulerEquivalence : public ::testing::TestWithParam<core::Algorithm> {};

TEST_P(SchedulerEquivalence, PoolMatchesOpenMp) {
  const auto g = graph::Csr::from_edge_list(
      graph::chung_lu_power_law(900, 7000, 2.1, 61));
  core::Options omp;
  omp.algorithm = GetParam();
  omp.bmp_range_filter = GetParam() == core::Algorithm::kBmp;
  omp.rf_range_scale = 64;
  core::Options pool = omp;
  pool.scheduler = core::Scheduler::kTaskPool;
  pool.num_threads = 3;
  pool.task_size = 37;  // deliberately odd chunking
  const auto a = core::count_common_neighbors(g, omp);
  const auto b = core::count_common_neighbors(g, pool);
  EXPECT_FALSE(core::diff_counts(g, b, a).has_value());
}

INSTANTIATE_TEST_SUITE_P(Algos, SchedulerEquivalence,
                         ::testing::Values(core::Algorithm::kMergeBaseline,
                                           core::Algorithm::kMps,
                                           core::Algorithm::kBmp),
                         [](const auto& info) {
                           return std::string(core::algorithm_name(info.param));
                         });

}  // namespace
}  // namespace aecnc
